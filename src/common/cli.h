// Shared CLI plumbing for the svm* tools.
//
// Every tool owns its flag grammar; what they share is the frame around it:
// one usage formatter (so --help, usage errors and the docs all show the same
// text), a common --help/--version handler, and one version string for the
// whole toolbox. Tools describe themselves with a ToolInfo and route
// unrecognized or malformed flags through UsageError, which exits 2 — the
// conventional "bad invocation" status tests pin.
#ifndef SRC_COMMON_CLI_H_
#define SRC_COMMON_CLI_H_

#include <cstdio>
#include <string>

namespace hlrc {

struct ToolInfo {
  const char* name;     // "svmcheck"
  const char* summary;  // One line: what the tool does.
  const char* usage;    // Flag lines, one per line, two-space indented.
  // Invocation grammar after the tool name; nullptr renders as "[flags]"
  // (subcommand tools pass e.g. "COMMAND [flags]").
  const char* invocation = nullptr;
};

// Toolbox-wide version string ("hlrc-svm X.Y.Z" printed by --version).
const char* ToolVersion();

// Renders `usage: NAME ...` + summary + the tool's flag lines to `out`.
void PrintUsage(const ToolInfo& tool, std::FILE* out);

// Consumes --help/-h (usage to stdout, exit 0) and --version (exit 0).
// Returns false when `arg` is neither, so parsers call it from their
// unknown-flag fallthrough.
bool HandleCommonFlag(const ToolInfo& tool, const std::string& arg);

// Prints `NAME: MESSAGE` and the usage text to stderr, then exits 2.
[[noreturn]] void UsageError(const ToolInfo& tool, const std::string& message);

}  // namespace hlrc

#endif  // SRC_COMMON_CLI_H_

// Core scalar types shared by every module in the simulator.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>

namespace hlrc {

// Virtual simulation time, in nanoseconds. Signed so that deltas are safe to
// subtract; negative times never appear in a running simulation.
using SimTime = int64_t;

constexpr SimTime Nanos(int64_t n) { return n; }
constexpr SimTime Micros(int64_t us) { return us * 1000; }
constexpr SimTime Millis(int64_t ms) { return ms * 1000 * 1000; }
constexpr SimTime Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double ToMicros(SimTime t) { return static_cast<double>(t) / 1e3; }
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }

// Identifies one node of the simulated multicomputer.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

// Identifies one shared virtual memory page.
using PageId = int32_t;
constexpr PageId kInvalidPage = -1;

// Byte address inside the global shared address space.
using GlobalAddr = uint64_t;

// Identifies a lock or a barrier in the application synchronization API.
using LockId = int32_t;
using BarrierId = int32_t;

}  // namespace hlrc

#endif  // SRC_COMMON_TYPES_H_

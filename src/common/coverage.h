// Protocol-state coverage observation (docs/FUZZING.md).
//
// A CoverageObserver receives abstract "coverage points" from the protocol
// and network layers: hashed tuples describing which protocol-state
// transitions a run actually exercised (message-type delivery edges,
// page-protection transitions, sync-epoch write-notice batches, injected
// network faults, interval closes). The interface lives in src/common so the
// low layers (src/net, src/proto) can emit points without depending on the
// concrete map in src/fuzz; emitting is a single-branch no-op when no
// observer is installed, so a coverage-off run is unchanged.
//
// Points are (domain, a, b) triples; the observer decides how to hash and
// deduplicate them. Producers keep `a`/`b` free of node ids and raw
// addresses where possible so the point space measures protocol behavior,
// not topology.
#ifndef SRC_COMMON_COVERAGE_H_
#define SRC_COMMON_COVERAGE_H_

#include <cstdint>

namespace hlrc {

class CoverageObserver {
 public:
  // Point domains, used for reporting breakdowns. Keep kDomainNames in sync.
  enum class Domain : uint32_t {
    kMsgEdge = 0,         // (prev MsgType, MsgType) delivery edges per node.
    kPageTransition = 1,  // (prot before, prot after, cause) per page event.
    kSyncEpoch = 2,       // (sync kind, write-notice batch-size bucket).
    kFault = 3,           // (MsgType, injected fault kind).
    kInterval = 4,        // (dirty-page-count bucket) at interval close.
  };
  static constexpr int kDomains = 5;

  virtual ~CoverageObserver() = default;

  // Records one coverage point. Must not charge simulated time or schedule
  // events: coverage is pure observation, like metrics and tracing.
  virtual void Cover(Domain domain, uint64_t a, uint64_t b) = 0;
};

inline const char* CoverageDomainName(CoverageObserver::Domain d) {
  switch (d) {
    case CoverageObserver::Domain::kMsgEdge: return "msg-edge";
    case CoverageObserver::Domain::kPageTransition: return "page-transition";
    case CoverageObserver::Domain::kSyncEpoch: return "sync-epoch";
    case CoverageObserver::Domain::kFault: return "fault";
    case CoverageObserver::Domain::kInterval: return "interval";
  }
  return "?";
}

// Logarithmic bucketing for unbounded counts (write-notice batch sizes,
// dirty-page counts): exact below 5, then one bucket per power of two. Keeps
// the point space finite without erasing the small-count structure.
inline uint64_t CoverageBucket(uint64_t n) {
  if (n <= 4) {
    return n;
  }
  uint64_t bucket = 4;
  while (n > 1) {
    n >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace hlrc

#endif  // SRC_COMMON_COVERAGE_H_

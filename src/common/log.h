// Minimal leveled logger. Logging is off by default so benchmark output stays
// clean; tests and debugging sessions can raise the level.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdio>

namespace hlrc {

enum class LogLevel : int {
  kNone = 0,
  kError = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

// Global log level; plain global because the simulator is single threaded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace hlrc

#define HLRC_LOG(level, ...)                              \
  do {                                                    \
    if (::hlrc::GetLogLevel() >= (level)) {               \
      std::fprintf(stderr, __VA_ARGS__);                  \
      std::fprintf(stderr, "\n");                         \
    }                                                     \
  } while (0)

#define HLRC_ERROR(...) HLRC_LOG(::hlrc::LogLevel::kError, __VA_ARGS__)
#define HLRC_INFO(...) HLRC_LOG(::hlrc::LogLevel::kInfo, __VA_ARGS__)
#define HLRC_DEBUG(...) HLRC_LOG(::hlrc::LogLevel::kDebug, __VA_ARGS__)
#define HLRC_TRACE(...) HLRC_LOG(::hlrc::LogLevel::kTrace, __VA_ARGS__)

#endif  // SRC_COMMON_LOG_H_

// Lightweight invariant-checking macros. A failed CHECK aborts: the simulator
// is deterministic, so any violated invariant is a programming error, not a
// recoverable condition.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace hlrc {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace hlrc

#define HLRC_CHECK(expr)                                 \
  do {                                                   \
    if (!(expr)) {                                       \
      ::hlrc::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                    \
  } while (0)

#define HLRC_CHECK_MSG(expr, ...)                        \
  do {                                                   \
    if (!(expr)) {                                       \
      std::fprintf(stderr, "CHECK failed: ");            \
      std::fprintf(stderr, __VA_ARGS__);                 \
      std::fprintf(stderr, "\n");                        \
      ::hlrc::CheckFailed(__FILE__, __LINE__, #expr);    \
    }                                                    \
  } while (0)

#ifndef NDEBUG
#define HLRC_DCHECK(expr) HLRC_CHECK(expr)
#else
#define HLRC_DCHECK(expr) \
  do {                    \
  } while (0)
#endif

#endif  // SRC_COMMON_CHECK_H_

// ASCII table formatting used by the benchmark harness to print the paper's
// tables. Columns are sized to fit content; numbers are right aligned.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace hlrc {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  // Renders the table to `out` (stdout by default).
  void Print(std::FILE* out = stdout) const;
  std::string ToString() const;

  // Number formatting helpers for cells.
  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(int64_t v);
  static std::string FmtBytes(int64_t bytes);

 private:
  std::string title_;
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace hlrc

#endif  // SRC_COMMON_TABLE_H_

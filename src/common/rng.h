// Deterministic pseudo-random number generation (SplitMix64 core). The
// simulator never uses std::random_device or global state: every consumer owns
// an Rng seeded explicitly, which keeps runs reproducible bit-for-bit.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace hlrc {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t NextU64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    HLRC_CHECK(bound > 0);
    return NextU64() % bound;
  }

  // Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    HLRC_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

}  // namespace hlrc

#endif  // SRC_COMMON_RNG_H_

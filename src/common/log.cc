#include "src/common/log.h"

namespace hlrc {
namespace {

LogLevel g_level = LogLevel::kError;

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

}  // namespace hlrc

#include "src/common/cli.h"

#include <cstdlib>

namespace hlrc {

const char* ToolVersion() { return "hlrc-svm 0.7.0"; }

void PrintUsage(const ToolInfo& tool, std::FILE* out) {
  std::fprintf(out, "usage: %s %s\n\n%s\n\nflags:\n%s", tool.name,
               tool.invocation != nullptr ? tool.invocation : "[flags]", tool.summary,
               tool.usage);
  std::fprintf(out,
               "  --help                show this message and exit\n"
               "  --version             print the toolbox version and exit\n");
}

bool HandleCommonFlag(const ToolInfo& tool, const std::string& arg) {
  if (arg == "--help" || arg == "-h") {
    PrintUsage(tool, stdout);
    std::exit(0);
  }
  if (arg == "--version") {
    std::printf("%s %s\n", tool.name, ToolVersion());
    std::exit(0);
  }
  return false;
}

void UsageError(const ToolInfo& tool, const std::string& message) {
  std::fprintf(stderr, "%s: %s\n", tool.name, message.c_str());
  PrintUsage(tool, stderr);
  std::exit(2);
}

}  // namespace hlrc

#include "src/common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>

namespace hlrc {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E' && c != '%' && c != 'x' && c != ',') {
      return false;
    }
  }
  return true;
}

}  // namespace

void Table::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void Table::AddRow(std::vector<std::string> row) {
  Row r;
  r.cells = std::move(row);
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
}

void Table::AddSeparator() { pending_separator_ = true; }

std::string Table::ToString() const {
  size_t ncols = header_.size();
  for (const Row& r : rows_) {
    ncols = std::max(ncols, r.cells.size());
  }
  std::vector<size_t> width(ncols, 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const Row& r : rows_) {
    for (size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      line += ' ';
      const size_t pad = width[c] - cell.size();
      if (LooksNumeric(cell)) {
        line += std::string(pad, ' ') + cell;
      } else {
        line += cell + std::string(pad, ' ');
      }
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string rule = "+";
  for (size_t c = 0; c < ncols; ++c) {
    rule += std::string(width[c] + 2, '-') + "+";
  }
  rule += '\n';

  std::string out;
  if (!title_.empty()) {
    out += title_ + "\n";
  }
  out += rule;
  if (!header_.empty()) {
    out += format_row(header_);
    out += rule;
  }
  for (const Row& r : rows_) {
    if (r.separator_before) {
      out += rule;
    }
    out += format_row(r.cells);
  }
  out += rule;
  return out;
}

void Table::Print(std::FILE* out) const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string Table::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Fmt(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::FmtBytes(int64_t bytes) {
  char buf[64];
  if (bytes >= 10 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(bytes));
  }
  return buf;
}

}  // namespace hlrc

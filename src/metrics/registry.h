// MetricsRegistry: named per-node counters, gauges, and histograms.
//
// The registry is the slow path: instruments are resolved by name once, at
// enable time, and the returned raw pointers are stable for the registry's
// lifetime (per-name storage is sized to the node count on first use and
// never moves). Hot paths then record through the pointer — an increment or
// a Histogram::Record, no map lookups, no allocation.
#ifndef SRC_METRICS_REGISTRY_H_
#define SRC_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/metrics/histogram.h"

namespace hlrc {

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int nodes) : nodes_(nodes) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  int nodes() const { return nodes_; }

  // Resolve (creating on first use) the per-node instrument. Pointers stay
  // valid until the registry is destroyed.
  int64_t* Counter(const std::string& name, NodeId node);
  double* Gauge(const std::string& name, NodeId node);
  Histogram* Histo(const std::string& name, NodeId node);

  // Export iteration: name -> per-node values, ordered by name.
  const std::map<std::string, std::unique_ptr<std::vector<int64_t>>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<std::vector<double>>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<std::vector<Histogram>>>& histograms() const {
    return histograms_;
  }

  // All nodes' recordings of one histogram merged into a single distribution.
  Histogram MergedHisto(const std::string& name) const;
  int64_t CounterTotal(const std::string& name) const;

 private:
  int nodes_;
  // unique_ptr indirection keeps the vectors' addresses stable under map
  // rebalancing; each vector is sized to nodes_ at creation and never resized.
  std::map<std::string, std::unique_ptr<std::vector<int64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::vector<double>>> gauges_;
  std::map<std::string, std::unique_ptr<std::vector<Histogram>>> histograms_;
};

}  // namespace hlrc

#endif  // SRC_METRICS_REGISTRY_H_

// Minimal recursive-descent JSON parser (no external dependencies).
//
// Parses the full JSON grammar into a DOM of JsonValue nodes. Built for the
// run-summary / bench files this repo writes and for validating the Chrome
// trace dumps in tests; it is strict (no trailing commas, no comments) and
// reports the byte offset of the first error.
#ifndef SRC_METRICS_JSON_H_
#define SRC_METRICS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hlrc {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  double num = 0.0;
  bool is_int = false;   // number had no '.', 'e' and fits int64
  int64_t num_i = 0;
  std::string str;
  std::vector<JsonValue> arr;
  // Insertion-ordered; duplicate keys keep the last occurrence reachable
  // through Find (which scans from the back).
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool IsNull() const { return type == Type::kNull; }
  bool IsBool() const { return type == Type::kBool; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsObject() const { return type == Type::kObject; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed accessors with defaults — convenient for optional fields.
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  const std::string& AsString(const std::string& fallback = kEmpty) const;
  bool AsBool(bool fallback = false) const;

  // Find + accessor in one step.
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  static const std::string kEmpty;
};

// Parses `text` into `*out`. On failure returns false and describes the
// error (with byte offset) in `*err`.
bool ParseJson(const std::string& text, JsonValue* out, std::string* err);

}  // namespace hlrc

#endif  // SRC_METRICS_JSON_H_

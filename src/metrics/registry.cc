#include "src/metrics/registry.h"

#include "src/common/check.h"

namespace hlrc {

namespace {

template <typename T>
T* Resolve(std::map<std::string, std::unique_ptr<std::vector<T>>>* store,
           const std::string& name, NodeId node, int nodes) {
  HLRC_CHECK(node >= 0 && node < nodes);
  auto it = store->find(name);
  if (it == store->end()) {
    it = store->emplace(name, std::make_unique<std::vector<T>>(static_cast<size_t>(nodes)))
             .first;
  }
  return &(*it->second)[static_cast<size_t>(node)];
}

}  // namespace

int64_t* MetricsRegistry::Counter(const std::string& name, NodeId node) {
  return Resolve(&counters_, name, node, nodes_);
}

double* MetricsRegistry::Gauge(const std::string& name, NodeId node) {
  return Resolve(&gauges_, name, node, nodes_);
}

Histogram* MetricsRegistry::Histo(const std::string& name, NodeId node) {
  return Resolve(&histograms_, name, node, nodes_);
}

Histogram MetricsRegistry::MergedHisto(const std::string& name) const {
  Histogram out;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return out;
  }
  for (const Histogram& h : *it->second) {
    out.Merge(h);
  }
  return out;
}

int64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  int64_t total = 0;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    return 0;
  }
  for (int64_t v : *it->second) {
    total += v;
  }
  return total;
}

}  // namespace hlrc

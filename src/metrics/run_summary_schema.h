// Structural validator for the versioned run-summary JSON.
//
// One definition of "schema-valid", shared by `svmprof --check`, the CI
// smoke step, and the tests, so the exporter cannot drift from its
// consumers unnoticed. Validates the hlrc-run-summary schema, currently
// version 1 (see docs/OBSERVABILITY.md for the field-by-field description).
#ifndef SRC_METRICS_RUN_SUMMARY_SCHEMA_H_
#define SRC_METRICS_RUN_SUMMARY_SCHEMA_H_

#include <string>

#include "src/metrics/json.h"

namespace hlrc {

inline constexpr char kRunSummarySchemaName[] = "hlrc-run-summary";
inline constexpr int kRunSummarySchemaVersion = 1;

// Returns true when `root` is a structurally valid run summary: required
// sections present and well-typed, histogram bucket counts consistent with
// their totals, percentiles monotone, time-series samples aligned with the
// declared series. On failure fills `*err` with the first violation.
bool ValidateRunSummary(const JsonValue& root, std::string* err);

}  // namespace hlrc

#endif  // SRC_METRICS_RUN_SUMMARY_SCHEMA_H_

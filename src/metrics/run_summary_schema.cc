#include "src/metrics/run_summary_schema.h"

#include <cstdio>

namespace hlrc {

namespace {

bool Fail(std::string* err, const std::string& msg) {
  if (err != nullptr) {
    *err = msg;
  }
  return false;
}

bool RequireObject(const JsonValue& root, const std::string& key, const JsonValue** out,
                   std::string* err) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr || !v->IsObject()) {
    return Fail(err, "missing or non-object field: " + key);
  }
  *out = v;
  return true;
}

bool RequireArray(const JsonValue& root, const std::string& key, const JsonValue** out,
                  std::string* err) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr || !v->IsArray()) {
    return Fail(err, "missing or non-array field: " + key);
  }
  *out = v;
  return true;
}

bool RequireInt(const JsonValue& root, const std::string& key, int64_t min_value,
                std::string* err) {
  const JsonValue* v = root.Find(key);
  if (v == nullptr || !v->IsNumber()) {
    return Fail(err, "missing or non-numeric field: " + key);
  }
  if (v->AsInt() < min_value) {
    return Fail(err, "field out of range: " + key);
  }
  return true;
}

bool ValidateHistogram(const std::string& name, const JsonValue& h, int64_t nodes,
                       std::string* err) {
  const std::string where = "histogram " + name + ": ";
  if (!h.IsObject()) {
    return Fail(err, where + "not an object");
  }
  for (const char* k : {"count", "sum", "min", "max"}) {
    if (!RequireInt(h, k, 0, err)) {
      return Fail(err, where + *err);
    }
  }
  const int64_t count = h.GetInt("count");
  if (count > 0 && h.GetInt("min") > h.GetInt("max")) {
    return Fail(err, where + "min > max");
  }
  const JsonValue* pct;
  if (!RequireObject(h, "percentiles", &pct, err)) {
    return Fail(err, where + *err);
  }
  double prev = -1.0;
  for (const char* k : {"p50", "p90", "p99", "p999"}) {
    const JsonValue* p = pct->Find(k);
    if (p == nullptr || !p->IsNumber()) {
      return Fail(err, where + "missing percentile " + k);
    }
    if (p->AsDouble() < prev) {
      return Fail(err, where + "percentiles not monotone at " + k);
    }
    prev = p->AsDouble();
  }
  const JsonValue* buckets;
  if (!RequireArray(h, "buckets", &buckets, err)) {
    return Fail(err, where + *err);
  }
  int64_t bucket_total = 0;
  int64_t prev_hi = -1;
  for (const JsonValue& b : buckets->arr) {
    if (!b.IsObject()) {
      return Fail(err, where + "bucket is not an object");
    }
    const int64_t lo = b.GetInt("lo", -1);
    const int64_t hi = b.GetInt("hi", -1);
    const int64_t n = b.GetInt("count", -1);
    if (lo < 0 || hi < lo || n <= 0) {
      return Fail(err, where + "malformed bucket");
    }
    if (lo <= prev_hi) {
      return Fail(err, where + "buckets not ascending");
    }
    prev_hi = hi;
    bucket_total += n;
  }
  if (bucket_total != count) {
    return Fail(err, where + "bucket counts do not sum to count");
  }
  const JsonValue* per_node;
  if (!RequireArray(h, "per_node_counts", &per_node, err)) {
    return Fail(err, where + *err);
  }
  if (static_cast<int64_t>(per_node->arr.size()) != nodes) {
    return Fail(err, where + "per_node_counts length != nodes");
  }
  int64_t node_total = 0;
  for (const JsonValue& v : per_node->arr) {
    if (!v.IsNumber() || v.AsInt() < 0) {
      return Fail(err, where + "malformed per_node_counts entry");
    }
    node_total += v.AsInt();
  }
  if (node_total != count) {
    return Fail(err, where + "per_node_counts do not sum to count");
  }
  return true;
}

bool ValidateTimeseries(const JsonValue& ts, std::string* err) {
  if (!RequireInt(ts, "interval_ns", 1, err)) {
    return false;
  }
  const JsonValue* series;
  const JsonValue* samples;
  if (!RequireArray(ts, "series", &series, err) ||
      !RequireArray(ts, "samples", &samples, err)) {
    return false;
  }
  for (const JsonValue& s : series->arr) {
    if (!s.IsObject() || s.Find("name") == nullptr || !s.Find("name")->IsString() ||
        s.Find("node") == nullptr || !s.Find("node")->IsNumber()) {
      return Fail(err, "timeseries: malformed series entry");
    }
  }
  int64_t prev_t = -1;
  for (const JsonValue& s : samples->arr) {
    if (!s.IsObject()) {
      return Fail(err, "timeseries: sample is not an object");
    }
    const JsonValue* t = s.Find("t_ns");
    if (t == nullptr || !t->IsNumber() || t->AsInt() < 0) {
      return Fail(err, "timeseries: malformed sample time");
    }
    if (t->AsInt() <= prev_t) {
      return Fail(err, "timeseries: sample times not strictly increasing");
    }
    prev_t = t->AsInt();
    const JsonValue* v = s.Find("v");
    if (v == nullptr || !v->IsArray() || v->arr.size() != series->arr.size()) {
      return Fail(err, "timeseries: sample value count != series count");
    }
    for (const JsonValue& x : v->arr) {
      if (!x.IsNumber()) {
        return Fail(err, "timeseries: non-numeric sample value");
      }
    }
  }
  return true;
}

bool ValidateHotPages(const JsonValue& hot, std::string* err) {
  int64_t prev_score = -1;
  bool first = true;
  for (const JsonValue& p : hot.arr) {
    if (!p.IsObject()) {
      return Fail(err, "hot_pages: entry is not an object");
    }
    for (const char* k : {"page", "score", "read_faults", "write_faults", "fetches",
                          "fetch_bytes", "diff_bytes_created", "diffs_applied",
                          "diff_bytes_applied", "writers"}) {
      if (!RequireInt(p, k, 0, err)) {
        return Fail(err, "hot_pages: " + *err);
      }
    }
    const int64_t score = p.GetInt("score");
    if (score <= 0) {
      return Fail(err, "hot_pages: zero-score page exported");
    }
    if (!first && score > prev_score) {
      return Fail(err, "hot_pages: not sorted by descending score");
    }
    first = false;
    prev_score = score;
  }
  return true;
}

}  // namespace

bool ValidateRunSummary(const JsonValue& root, std::string* err) {
  if (!root.IsObject()) {
    return Fail(err, "top-level value is not an object");
  }
  if (root.GetString("schema") != kRunSummarySchemaName) {
    return Fail(err, "schema field is not \"" + std::string(kRunSummarySchemaName) + "\"");
  }
  if (root.GetInt("version") != kRunSummarySchemaVersion) {
    return Fail(err, "unsupported schema version");
  }

  const JsonValue* config;
  if (!RequireObject(root, "config", &config, err)) {
    return false;
  }
  if (config->GetString("app").empty() || config->GetString("protocol").empty()) {
    return Fail(err, "config: missing app or protocol name");
  }
  if (!RequireInt(*config, "nodes", 1, err) || !RequireInt(*config, "page_size", 1, err)) {
    return false;
  }
  const int64_t nodes = config->GetInt("nodes");

  const JsonValue* verified = root.Find("verified");
  if (verified == nullptr || !verified->IsBool()) {
    return Fail(err, "missing or non-boolean field: verified");
  }

  // Optional protocol-state coverage block (svmsim --coverage, svmfuzz).
  const JsonValue* coverage = root.Find("coverage");
  if (coverage != nullptr) {
    if (!coverage->IsObject() || !RequireInt(*coverage, "points", 0, err) ||
        !RequireInt(*coverage, "hits", 0, err)) {
      return Fail(err, "coverage: malformed object");
    }
    const JsonValue* domains;
    if (!RequireObject(*coverage, "domains", &domains, err)) {
      return false;
    }
    for (const auto& [name, pts] : domains->obj) {
      if (!pts.IsNumber() || !pts.is_int || pts.num_i < 0) {
        return Fail(err, "coverage.domains." + name + ": not a non-negative integer");
      }
    }
  }

  // Optional causal-span section (svmsim --metrics-out records spans; see
  // src/tracing). Structural checks only — this layer sits below src/tracing,
  // so kind names and DAG well-formedness are checked by ParseSpans /
  // CheckSpanDag (svmtrace --check).
  const JsonValue* spans = root.Find("spans");
  if (spans != nullptr) {
    if (!spans->IsObject() || spans->GetString("schema") != "hlrc-spans" ||
        !RequireInt(*spans, "version", 1, err) || !RequireInt(*spans, "dropped", 0, err)) {
      return Fail(err, "spans: malformed section header");
    }
    const JsonValue* list;
    if (!RequireArray(*spans, "spans", &list, err)) {
      return false;
    }
    for (const JsonValue& s : list->arr) {
      if (!s.IsObject() || !RequireInt(s, "id", 0, err) ||
          s.Find("kind") == nullptr || !s.Find("kind")->IsString() ||
          !RequireInt(s, "node", 0, err)) {
        return Fail(err, "spans: malformed span entry");
      }
    }
  }

  const JsonValue* totals;
  if (!RequireObject(root, "totals", &totals, err)) {
    return false;
  }
  if (!RequireInt(*totals, "virtual_time_ns", 0, err)) {
    return false;
  }
  const JsonValue* proto;
  const JsonValue* traffic;
  if (!RequireObject(*totals, "proto", &proto, err) ||
      !RequireObject(*totals, "traffic", &traffic, err)) {
    return false;
  }

  const JsonValue* per_node;
  if (!RequireArray(root, "per_node", &per_node, err)) {
    return false;
  }
  if (static_cast<int64_t>(per_node->arr.size()) != nodes) {
    return Fail(err, "per_node length != config.nodes");
  }
  for (const JsonValue& n : per_node->arr) {
    if (!n.IsObject() || !RequireInt(n, "node", 0, err) ||
        !RequireInt(n, "finish_ns", 0, err)) {
      return Fail(err, "per_node: malformed entry");
    }
  }

  const JsonValue* histos;
  if (!RequireObject(root, "histograms", &histos, err)) {
    return false;
  }
  for (const auto& [name, h] : histos->obj) {
    if (!ValidateHistogram(name, h, nodes, err)) {
      return false;
    }
  }

  const JsonValue* ts;
  if (!RequireObject(root, "timeseries", &ts, err)) {
    return false;
  }
  if (!ValidateTimeseries(*ts, err)) {
    return false;
  }

  const JsonValue* hot;
  if (!RequireArray(root, "hot_pages", &hot, err)) {
    return false;
  }
  return ValidateHotPages(*hot, err);
}

}  // namespace hlrc

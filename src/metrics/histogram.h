// Log2-bucketed latency/size histogram.
//
// Recording is O(1): one bit-scan to find the bucket plus a handful of
// increments, cheap enough to leave compiled into every hot path behind a
// null-pointer check. Buckets are powers of two (bucket 0 holds the value 0,
// bucket b holds [2^(b-1), 2^b - 1]), which keeps the memory footprint fixed
// (64 buckets cover the full int64 range) while preserving relative error
// under a factor of two at every scale — a p99.9 of 12 ms is distinguishable
// from a p50 of 60 us without storing a single sample. Exact min/max/sum are
// kept alongside the buckets so averages and tails are not quantized, and
// Merge() makes per-node recordings aggregatable without precision loss.
#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace hlrc {

class Histogram {
 public:
  static constexpr int kBuckets = 64;

  // Records one value. Negative values clamp to 0 (latencies are never
  // negative in a correct simulation; clamping keeps the recorder total).
  void Record(int64_t v) {
    if (v < 0) {
      v = 0;
    }
    ++count_;
    sum_ += v;
    if (v < min_) {
      min_ = v;
    }
    if (v > max_) {
      max_ = v;
    }
    ++buckets_[static_cast<size_t>(BucketOf(v))];
  }

  // Merging two disjoint recordings yields exactly the histogram of the
  // combined recording (bucket counts, count, sum, min, max all exact).
  void Merge(const Histogram& o);

  int64_t Count() const { return count_; }
  int64_t Sum() const { return sum_; }
  int64_t Min() const { return count_ == 0 ? 0 : min_; }
  int64_t Max() const { return count_ == 0 ? 0 : max_; }
  bool Empty() const { return count_ == 0; }
  double Mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Estimated value at percentile p (0..100): linear interpolation inside the
  // covering bucket, clamped to the exact [Min, Max]. Percentile(0) == Min()
  // and Percentile(100) == Max(); the estimate is monotone in p.
  double Percentile(double p) const;

  const std::array<int64_t, kBuckets>& buckets() const { return buckets_; }

  // Bucket index of a value: 0 for 0, else 1 + floor(log2(v)), capped.
  static int BucketOf(int64_t v);
  // Inclusive value range covered by bucket b.
  static int64_t BucketLow(int b);
  static int64_t BucketHigh(int b);

 private:
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = std::numeric_limits<int64_t>::max();
  int64_t max_ = std::numeric_limits<int64_t>::min();
  std::array<int64_t, kBuckets> buckets_{};
};

}  // namespace hlrc

#endif  // SRC_METRICS_HISTOGRAM_H_

// Metrics: the per-run bundle System hands out when metrics are enabled.
//
// Owns the registry, the page-heat profiler, and the simulated-time sampler,
// and pre-resolves every per-node protocol instrument into ProtoMetrics
// structs so hot paths never see a name lookup. Layers below src/svm
// (network, protocol) receive only raw pointers / ProtoMetrics; only System
// and the exporters deal with this class directly.
//
// Metric names (see docs/OBSERVABILITY.md for the full catalogue):
//   proto.data_wait_ns / lock_wait_ns / barrier_wait_ns / gc_wait_ns
//   proto.outstanding_fetches
//   net.queue_ns, net.wire_ns.<msg-type>, net.retransmit_ack_ns
//   net.bytes_in_flight, net.retransmit_backlog
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <vector>

#include "src/common/types.h"
#include "src/metrics/heat.h"
#include "src/metrics/node_metrics.h"
#include "src/metrics/registry.h"
#include "src/metrics/sampler.h"
#include "src/sim/engine.h"

namespace hlrc {

class Metrics {
 public:
  Metrics(Engine* engine, int nodes, int64_t num_pages, SimTime sample_interval);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  PageHeatProfiler& heat() { return heat_; }
  const PageHeatProfiler& heat() const { return heat_; }
  Sampler& sampler() { return sampler_; }
  const Sampler& sampler() const { return sampler_; }

  ProtoMetrics* proto(NodeId node) { return &proto_[static_cast<size_t>(node)]; }

 private:
  MetricsRegistry registry_;
  PageHeatProfiler heat_;
  Sampler sampler_;
  std::vector<ProtoMetrics> proto_;
};

}  // namespace hlrc

#endif  // SRC_METRICS_METRICS_H_

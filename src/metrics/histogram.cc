#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>

namespace hlrc {

void Histogram::Merge(const Histogram& o) {
  if (o.count_ == 0) {
    return;
  }
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<size_t>(b)] += o.buckets_[static_cast<size_t>(b)];
  }
}

int Histogram::BucketOf(int64_t v) {
  if (v <= 0) {
    return 0;
  }
  // 1 + floor(log2(v)); v in [2^(b-1), 2^b - 1] lands in bucket b.
  return 64 - std::countl_zero(static_cast<uint64_t>(v));
}

int64_t Histogram::BucketLow(int b) {
  if (b <= 0) {
    return 0;
  }
  return int64_t{1} << (b - 1);
}

int64_t Histogram::BucketHigh(int b) {
  if (b <= 0) {
    return 0;
  }
  if (b >= kBuckets - 1) {
    return std::numeric_limits<int64_t>::max();
  }
  return (int64_t{1} << b) - 1;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Fractional rank in [0, count]; the covering bucket is the first whose
  // cumulative count reaches it.
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t n = buckets_[static_cast<size_t>(b)];
    if (n == 0) {
      continue;
    }
    const int64_t before = cum;
    cum += n;
    if (static_cast<double>(cum) >= target) {
      double frac = (target - static_cast<double>(before)) / static_cast<double>(n);
      frac = std::clamp(frac, 0.0, 1.0);
      const double lo =
          std::max(static_cast<double>(BucketLow(b)), static_cast<double>(Min()));
      const double hi =
          std::min(static_cast<double>(BucketHigh(b)), static_cast<double>(Max()));
      return lo + frac * std::max(0.0, hi - lo);
    }
  }
  return static_cast<double>(Max());
}

}  // namespace hlrc

// Minimal streaming JSON writer (no external dependencies).
//
// Handles comma placement and string escaping so callers can't produce
// trailing commas or unescaped control characters; numbers are emitted in a
// locale-independent form that round-trips through the companion parser.
#ifndef SRC_METRICS_JSON_WRITER_H_
#define SRC_METRICS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hlrc {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Inside an object: emits the key; the next value call is its value.
  void Key(const std::string& k);

  void String(const std::string& v);
  void Int(int64_t v);
  void Double(double v);
  void Bool(bool v);
  void Null();

  // Key/value in one call.
  void KV(const std::string& k, const std::string& v) { Key(k); String(v); }
  void KV(const std::string& k, const char* v) { Key(k); String(v); }
  void KV(const std::string& k, int64_t v) { Key(k); Int(v); }
  void KV(const std::string& k, int v) { Key(k); Int(v); }
  void KV(const std::string& k, double v) { Key(k); Double(v); }
  void KV(const std::string& k, bool v) { Key(k); Bool(v); }

  const std::string& str() const { return out_; }
  // Writes str() to `path`; returns false and fills `err` on I/O failure.
  bool WriteFile(const std::string& path, std::string* err) const;

  static std::string Escape(const std::string& s);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool have_key_ = false;
};

}  // namespace hlrc

#endif  // SRC_METRICS_JSON_WRITER_H_

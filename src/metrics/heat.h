// Per-page heat profiler.
//
// Attributes protocol activity to individual shared pages so a run can be
// ranked by page: faults (read/write split), page fetches and fetched bytes,
// diff bytes created for and applied to the page, and the set of distinct
// writing nodes (a page with many writers is a false-sharing suspect at any
// page size, the effect the paper's §4.8 SOR experiment isolates). All hooks
// are O(1) increments; storage is a flat vector indexed by PageId.
#ifndef SRC_METRICS_HEAT_H_
#define SRC_METRICS_HEAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace hlrc {

struct PageHeat {
  int64_t read_faults = 0;
  int64_t write_faults = 0;
  int64_t fetches = 0;
  int64_t fetch_bytes = 0;
  int64_t diff_bytes_created = 0;   // update bytes produced for this page
  int64_t diffs_applied = 0;
  int64_t diff_bytes_applied = 0;
  // One bit per writing node (node & 63). Exact for <= 64 nodes — the paper's
  // full Paragon configuration — and a conservative lower bound beyond that.
  uint64_t writer_mask = 0;

  int64_t Faults() const { return read_faults + write_faults; }
  int Writers() const { return std::popcount(writer_mask); }
  // Ranking key: protocol work the page caused.
  int64_t Score() const {
    return Faults() + fetches + diffs_applied + (fetch_bytes + diff_bytes_applied) / 64;
  }
};

class PageHeatProfiler {
 public:
  explicit PageHeatProfiler(int64_t num_pages)
      : pages_(static_cast<size_t>(num_pages)) {}

  void OnFault(PageId page, bool is_write) {
    PageHeat& h = At(page);
    if (is_write) {
      ++h.write_faults;
    } else {
      ++h.read_faults;
    }
  }
  void OnWrite(PageId page, NodeId writer) {
    At(page).writer_mask |= uint64_t{1} << (static_cast<unsigned>(writer) & 63u);
  }
  void OnFetch(PageId page, int64_t bytes) {
    PageHeat& h = At(page);
    ++h.fetches;
    h.fetch_bytes += bytes;
  }
  void OnDiffCreated(PageId page, int64_t bytes) { At(page).diff_bytes_created += bytes; }
  void OnDiffApplied(PageId page, int64_t bytes) {
    PageHeat& h = At(page);
    ++h.diffs_applied;
    h.diff_bytes_applied += bytes;
  }

  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  const PageHeat& page(PageId p) const { return pages_[static_cast<size_t>(p)]; }

  // Pages with nonzero score, hottest first, at most `n`.
  struct HotPage {
    PageId page;
    PageHeat heat;
  };
  std::vector<HotPage> TopN(size_t n) const;

 private:
  PageHeat& At(PageId page) { return pages_[static_cast<size_t>(page)]; }

  std::vector<PageHeat> pages_;
};

}  // namespace hlrc

#endif  // SRC_METRICS_HEAT_H_

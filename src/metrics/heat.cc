#include "src/metrics/heat.h"

#include <algorithm>

namespace hlrc {

std::vector<PageHeatProfiler::HotPage> PageHeatProfiler::TopN(size_t n) const {
  std::vector<HotPage> hot;
  for (size_t p = 0; p < pages_.size(); ++p) {
    if (pages_[p].Score() > 0) {
      hot.push_back(HotPage{static_cast<PageId>(p), pages_[p]});
    }
  }
  std::stable_sort(hot.begin(), hot.end(), [](const HotPage& a, const HotPage& b) {
    if (a.heat.Score() != b.heat.Score()) {
      return a.heat.Score() > b.heat.Score();
    }
    return a.page < b.page;
  });
  if (hot.size() > n) {
    hot.resize(n);
  }
  return hot;
}

}  // namespace hlrc

// Simulated-time metric sampler.
//
// Snapshots a set of probes every `interval` of *virtual* time into a
// time-series, so burst structure (traffic spikes at barriers, retransmit
// backlogs during partitions) is visible instead of averaged away. The
// sampler is an ordinary engine event: it reads state and schedules its own
// next tick, so it cannot perturb simulated time — existing events keep
// their relative order, and the tick stops rescheduling the moment the event
// queue is otherwise empty (a tick that kept rescheduling unconditionally
// would prevent Engine::Run from ever draining).
#ifndef SRC_METRICS_SAMPLER_H_
#define SRC_METRICS_SAMPLER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/sim/engine.h"

namespace hlrc {

class Sampler {
 public:
  // `max_samples` bounds memory for arbitrarily long runs; once reached the
  // sampler stops ticking and the export marks the series truncated.
  Sampler(Engine* engine, SimTime interval, size_t max_samples = 16384);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Registers a probe before Start(). `node` is -1 for machine-wide series.
  void AddSeries(std::string name, NodeId node, std::function<double()> probe);

  // Takes the t=0 sample and schedules the first tick. Call once, before the
  // engine runs.
  void Start();

  struct SeriesInfo {
    std::string name;
    NodeId node;
  };
  struct Sample {
    SimTime time;
    std::vector<double> values;  // one per registered series
  };

  SimTime interval() const { return interval_; }
  const std::vector<SeriesInfo>& series() const { return series_; }
  const std::vector<Sample>& samples() const { return samples_; }
  bool truncated() const { return truncated_; }

 private:
  void TakeSample();
  void Tick();

  Engine* engine_;
  SimTime interval_;
  size_t max_samples_;
  bool started_ = false;
  bool truncated_ = false;
  std::vector<SeriesInfo> series_;
  std::vector<std::function<double()>> probes_;
  std::vector<Sample> samples_;
};

// Renders the sampler's series as Chrome trace-event counter events
// ("ph":"C"), one Perfetto counter track per (series, node), comma-joined
// with no trailing comma — ready to splice into a trace dump's event array.
std::string ChromeCounterEvents(const Sampler& sampler);

}  // namespace hlrc

#endif  // SRC_METRICS_SAMPLER_H_

#include "src/metrics/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace hlrc {

void JsonWriter::BeforeValue() {
  if (have_key_) {
    have_key_ = false;
    return;  // Comma was emitted before the key.
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_.push_back(true);
}

void JsonWriter::EndObject() {
  out_ += '}';
  first_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_.push_back(true);
}

void JsonWriter::EndArray() {
  out_ += ']';
  first_.pop_back();
}

void JsonWriter::Key(const std::string& k) {
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
  out_ += '"';
  out_ += Escape(k);
  out_ += "\":";
  have_key_ = true;
}

void JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void JsonWriter::Int(int64_t v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf.
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

bool JsonWriter::WriteFile(const std::string& path, std::string* err) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) {
      *err = "cannot open " + path + " for writing";
    }
    return false;
  }
  const size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
  const bool flushed = std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || n != out_.size() || !flushed) {
    if (err != nullptr) {
      *err = "short write to " + path;
    }
    return false;
  }
  return true;
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace hlrc

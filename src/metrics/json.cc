#include "src/metrics/json.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hlrc {

const std::string JsonValue::kEmpty;

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (auto it = obj.rbegin(); it != obj.rend(); ++it) {
    if (it->first == key) {
      return &it->second;
    }
  }
  return nullptr;
}

double JsonValue::AsDouble(double fallback) const {
  return type == Type::kNumber ? num : fallback;
}

int64_t JsonValue::AsInt(int64_t fallback) const {
  if (type != Type::kNumber) {
    return fallback;
  }
  return is_int ? num_i : static_cast<int64_t>(num);
}

const std::string& JsonValue::AsString(const std::string& fallback) const {
  return type == Type::kString ? str : fallback;
}

bool JsonValue::AsBool(bool fallback) const {
  return type == Type::kBool ? bool_v : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsInt(fallback) : fallback;
}

std::string JsonValue::GetString(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsString(fallback) : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsBool(fallback) : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* err) : text_(text), err_(err) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing data after top-level value");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 200;

  bool Fail(const char* msg) {
    if (err_ != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "JSON parse error at offset %zu: %s", pos_, msg);
      *err_ = buf;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Peek(char* c) {
    if (pos_ >= text_.size()) {
      return false;
    }
    *c = text_[pos_];
    return true;
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) {
      return Fail("invalid literal");
    }
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    char c;
    if (!Peek(&c)) {
      return Fail("unexpected end of input");
    }
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_v = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_v = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Peek(&c) || c != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (!Peek(&c) || c != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) {
        return false;
      }
      out->obj.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (!Peek(&c)) {
        return Fail("unterminated object");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(&v, depth + 1)) {
        return false;
      }
      out->arr.push_back(std::move(v));
      SkipWs();
      if (!Peek(&c)) {
        return Fail("unterminated array");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Fail("truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          uint32_t cp;
          if (!ParseHex4(&cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo;
            if (!ParseHex4(&lo)) {
              return false;
            }
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digit expected after '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    out->type = JsonValue::Type::kNumber;
    errno = 0;
    out->num = std::strtod(tok.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_int = true;
        out->num_i = static_cast<int64_t>(v);
      }
    }
    return true;
  }

  const std::string& text_;
  std::string* err_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* err) {
  *out = JsonValue{};
  Parser p(text, err);
  return p.Parse(out);
}

}  // namespace hlrc

#include "src/metrics/sampler.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/check.h"
#include "src/metrics/json_writer.h"

namespace hlrc {

Sampler::Sampler(Engine* engine, SimTime interval, size_t max_samples)
    : engine_(engine), interval_(interval), max_samples_(max_samples) {
  HLRC_CHECK(engine_ != nullptr);
  HLRC_CHECK(interval_ > 0);
  HLRC_CHECK(max_samples_ > 0);
}

void Sampler::AddSeries(std::string name, NodeId node, std::function<double()> probe) {
  HLRC_CHECK(!started_);
  series_.push_back(SeriesInfo{std::move(name), node});
  probes_.push_back(std::move(probe));
}

void Sampler::Start() {
  HLRC_CHECK(!started_);
  started_ = true;
  if (series_.empty()) {
    return;
  }
  TakeSample();
  engine_->Schedule(interval_, [this] { Tick(); });
}

void Sampler::TakeSample() {
  Sample s;
  s.time = engine_->Now();
  s.values.reserve(probes_.size());
  for (auto& probe : probes_) {
    s.values.push_back(probe());
  }
  samples_.push_back(std::move(s));
}

void Sampler::Tick() {
  TakeSample();
  if (samples_.size() >= max_samples_) {
    truncated_ = true;
    return;
  }
  // Reschedule only while other work remains: the tick itself was already
  // popped, so an empty queue here means the simulation has quiesced and
  // another tick would only stall Engine::Run.
  if (!engine_->Idle()) {
    engine_->Schedule(interval_, [this] { Tick(); });
  }
}

std::string ChromeCounterEvents(const Sampler& sampler) {
  std::string out;
  char buf[256];
  bool first = true;
  const auto& series = sampler.series();
  for (size_t si = 0; si < series.size(); ++si) {
    const std::string name = JsonWriter::Escape(series[si].name);
    const int pid = series[si].node < 0 ? 0 : series[si].node;
    for (const Sampler::Sample& s : sampler.samples()) {
      if (!first) {
        out += ",\n";
      }
      first = false;
      // Chrome trace timestamps are microseconds; counter tracks group by
      // (pid, name), so per-node series get one track per node.
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":%d,\"tid\":0,"
                    "\"args\":{\"value\":%.17g}}",
                    name.c_str(), static_cast<double>(s.time) / 1000.0, pid,
                    s.values[si]);
      out += buf;
    }
  }
  return out;
}

}  // namespace hlrc

// Pre-resolved instrument handles handed to one ProtocolNode.
//
// A ProtocolNode never talks to the MetricsRegistry by name: System resolves
// every instrument once at EnableMetrics() time and hands the protocol this
// plain struct of raw pointers. Hot paths stay a null-check plus an
// increment, and a node with metrics disabled carries a single null pointer.
#ifndef SRC_METRICS_NODE_METRICS_H_
#define SRC_METRICS_NODE_METRICS_H_

#include <cstdint>

#include "src/metrics/heat.h"
#include "src/metrics/histogram.h"
#include "src/sim/time_categories.h"

namespace hlrc {

struct ProtoMetrics {
  // Wall-clock span of each WaitScope, by category (nanoseconds).
  Histogram* data_wait_ns = nullptr;     // page-fetch / diff-fetch stalls
  Histogram* lock_wait_ns = nullptr;
  Histogram* barrier_wait_ns = nullptr;
  Histogram* gc_wait_ns = nullptr;
  // Faults currently blocked in ResolveFault on this node (sampler gauge).
  int64_t* outstanding_fetches = nullptr;
  // Shared across nodes; page-indexed, so no per-node state is needed.
  PageHeatProfiler* heat = nullptr;

  Histogram* ForWait(WaitCat cat) const {
    switch (cat) {
      case WaitCat::kData:
        return data_wait_ns;
      case WaitCat::kLock:
        return lock_wait_ns;
      case WaitCat::kBarrier:
        return barrier_wait_ns;
      case WaitCat::kGc:
        return gc_wait_ns;
      default:
        return nullptr;
    }
  }
};

}  // namespace hlrc

#endif  // SRC_METRICS_NODE_METRICS_H_

#include "src/metrics/metrics.h"

namespace hlrc {

Metrics::Metrics(Engine* engine, int nodes, int64_t num_pages, SimTime sample_interval)
    : registry_(nodes), heat_(num_pages), sampler_(engine, sample_interval) {
  proto_.resize(static_cast<size_t>(nodes));
  for (NodeId n = 0; n < nodes; ++n) {
    ProtoMetrics& pm = proto_[static_cast<size_t>(n)];
    pm.data_wait_ns = registry_.Histo("proto.data_wait_ns", n);
    pm.lock_wait_ns = registry_.Histo("proto.lock_wait_ns", n);
    pm.barrier_wait_ns = registry_.Histo("proto.barrier_wait_ns", n);
    pm.gc_wait_ns = registry_.Histo("proto.gc_wait_ns", n);
    pm.outstanding_fetches = registry_.Counter("proto.outstanding_fetches", n);
    pm.heat = &heat_;
    sampler_.AddSeries("outstanding_fetches", n,
                       [c = pm.outstanding_fetches] { return static_cast<double>(*c); });
  }
}

}  // namespace hlrc

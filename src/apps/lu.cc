#include "src/apps/lu.h"

#include <cmath>
#include <cstring>

#include "src/common/rng.h"
#include "src/svm/partition.h"

namespace hlrc {
namespace {

// Block kernels (row-major, B x B). These run for real on the shared pages;
// the virtual-time cost is charged separately via ComputeFlops.

void FactorDiag(double* d, int b) {
  for (int k = 0; k < b; ++k) {
    for (int i = k + 1; i < b; ++i) {
      d[i * b + k] /= d[k * b + k];
      for (int j = k + 1; j < b; ++j) {
        d[i * b + j] -= d[i * b + k] * d[k * b + j];
      }
    }
  }
}

// A := L^{-1} A where L is the unit lower triangle of the factored diagonal.
void SolveRowBlock(const double* diag, double* a, int b) {
  for (int k = 0; k < b; ++k) {
    for (int i = k + 1; i < b; ++i) {
      const double l = diag[i * b + k];
      for (int j = 0; j < b; ++j) {
        a[i * b + j] -= l * a[k * b + j];
      }
    }
  }
}

// A := A U^{-1} where U is the upper triangle of the factored diagonal.
void SolveColBlock(const double* diag, double* a, int b) {
  for (int j = 0; j < b; ++j) {
    const double inv = 1.0 / diag[j * b + j];
    for (int i = 0; i < b; ++i) {
      a[i * b + j] *= inv;
    }
    for (int j2 = j + 1; j2 < b; ++j2) {
      const double u = diag[j * b + j2];
      for (int i = 0; i < b; ++i) {
        a[i * b + j2] -= a[i * b + j] * u;
      }
    }
  }
}

// C -= A * B.
void MatmulSub(const double* a, const double* bm, double* c, int b) {
  for (int i = 0; i < b; ++i) {
    for (int k = 0; k < b; ++k) {
      const double av = a[i * b + k];
      for (int j = 0; j < b; ++j) {
        c[i * b + j] -= av * bm[k * b + j];
      }
    }
  }
}

// Position-seeded initial value: lets each node initialize its own blocks
// (distributed init preserves the home effect) while the sequential
// reference reproduces the exact same matrix.
double InitValue(uint64_t seed, int i, int j, int n) {
  Rng rng(seed ^ (static_cast<uint64_t>(i) * 0x9e3779b1u + static_cast<uint64_t>(j)));
  double v = rng.NextDouble() - 0.5;
  if (i == j) {
    v += n;  // Diagonally dominant: no pivoting needed.
  }
  return v;
}

}  // namespace

void LuApp::Setup(System& sys) {
  HLRC_CHECK(cfg_.n % cfg_.block == 0);
  block_bytes_ = static_cast<int64_t>(cfg_.block) * cfg_.block * 8;
  matrix_ = sys.space().AllocPageAligned(static_cast<int64_t>(cfg_.n) * cfg_.n * 8);
}

GlobalAddr LuApp::BlockAddr(int bi, int bj) const {
  return matrix_ + static_cast<GlobalAddr>((bi * nb() + bj)) *
                       static_cast<GlobalAddr>(block_bytes_);
}

NodeId LuApp::OwnerOf(int bi, int bj, int nodes) const {
  // Contiguous chunks of blocks per node, as in the paper (§4.1): "the matrix
  // is decomposed in contiguous blocks that are distributed to processors in
  // contiguous chunks". This aligns writers with block-policy homes (the
  // "home effect": HLRC creates no diffs for LU) at the cost of the inherent
  // computational imbalance the paper points out.
  return ContiguousOwner(bi * nb() + bj, static_cast<int64_t>(nb()) * nb(), nodes);
}

Task<void> LuApp::NodeMain(NodeContext& ctx) {
  const int P = ctx.nodes();
  const int B = cfg_.block;
  const int NB = nb();
  const int64_t bb = block_bytes_;
  const int64_t b3 = static_cast<int64_t>(B) * B * B;

  // Distributed initialization: every node fills its own blocks, so writers
  // coincide with block-policy homes (the paper's home effect for LU).
  int64_t my_elems = 0;
  for (int bi = 0; bi < NB; ++bi) {
    for (int bj = 0; bj < NB; ++bj) {
      if (OwnerOf(bi, bj, P) != ctx.id()) {
        continue;
      }
      co_await ctx.Write(BlockAddr(bi, bj), bb);
      double* blk = ctx.Ptr<double>(BlockAddr(bi, bj));
      for (int i = 0; i < B; ++i) {
        for (int j = 0; j < B; ++j) {
          blk[i * B + j] = InitValue(cfg_.seed, bi * B + i, bj * B + j, cfg_.n);
        }
      }
      my_elems += B * B;
    }
  }
  co_await ctx.ComputeFlops(my_elems);
  co_await ctx.Barrier(0);

  for (int k = 0; k < NB; ++k) {
    if (OwnerOf(k, k, P) == ctx.id()) {
      co_await ctx.Write(BlockAddr(k, k), bb);
      FactorDiag(ctx.Ptr<double>(BlockAddr(k, k)), B);
      co_await ctx.ComputeFlops(2 * b3 / 3);
    }
    co_await ctx.Barrier(1);

    for (int i = k + 1; i < NB; ++i) {
      if (OwnerOf(i, k, P) == ctx.id()) {
        co_await ctx.Read(BlockAddr(k, k), bb);
        co_await ctx.Write(BlockAddr(i, k), bb);
        SolveColBlock(ctx.Ptr<double>(BlockAddr(k, k)), ctx.Ptr<double>(BlockAddr(i, k)), B);
        co_await ctx.ComputeFlops(b3);
      }
      if (OwnerOf(k, i, P) == ctx.id()) {
        co_await ctx.Read(BlockAddr(k, k), bb);
        co_await ctx.Write(BlockAddr(k, i), bb);
        SolveRowBlock(ctx.Ptr<double>(BlockAddr(k, k)), ctx.Ptr<double>(BlockAddr(k, i)), B);
        co_await ctx.ComputeFlops(b3);
      }
    }
    co_await ctx.Barrier(2);

    for (int i = k + 1; i < NB; ++i) {
      for (int j = k + 1; j < NB; ++j) {
        if (OwnerOf(i, j, P) == ctx.id()) {
          co_await ctx.Read(BlockAddr(i, k), bb);
          co_await ctx.Read(BlockAddr(k, j), bb);
          co_await ctx.Write(BlockAddr(i, j), bb);
          MatmulSub(ctx.Ptr<double>(BlockAddr(i, k)), ctx.Ptr<double>(BlockAddr(k, j)),
                    ctx.Ptr<double>(BlockAddr(i, j)), B);
          co_await ctx.ComputeFlops(2 * b3);
        }
      }
    }
    co_await ctx.Barrier(3);
  }
}

System::Program LuApp::Program() {
  return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
}

int64_t LuApp::TotalFlops() const {
  const double n = cfg_.n;
  return static_cast<int64_t>(2.0 / 3.0 * n * n * n);
}

bool LuApp::Verify(System& sys, std::string* why) {
  const int B = cfg_.block;
  const int NB = nb();
  const int P = sys.config().nodes;

  if (reference_.empty()) {
    // Sequential reference: the same blocked algorithm in the same per-block
    // operation order, so results match bitwise.
    reference_.assign(static_cast<size_t>(cfg_.n) * cfg_.n, 0);
    auto blk = [&](int bi, int bj) {
      return &reference_[static_cast<size_t>((bi * NB + bj)) * static_cast<size_t>(B * B)];
    };
    for (int bi = 0; bi < NB; ++bi) {
      for (int bj = 0; bj < NB; ++bj) {
        for (int i = 0; i < B; ++i) {
          for (int j = 0; j < B; ++j) {
            blk(bi, bj)[i * B + j] = InitValue(cfg_.seed, bi * B + i, bj * B + j, cfg_.n);
          }
        }
      }
    }
    for (int k = 0; k < NB; ++k) {
      FactorDiag(blk(k, k), B);
      for (int i = k + 1; i < NB; ++i) {
        SolveColBlock(blk(k, k), blk(i, k), B);
        SolveRowBlock(blk(k, k), blk(k, i), B);
      }
      for (int i = k + 1; i < NB; ++i) {
        for (int j = k + 1; j < NB; ++j) {
          MatmulSub(blk(i, k), blk(k, j), blk(i, j), B);
        }
      }
    }
  }

  // Each block's final value lives at its owner.
  for (int bi = 0; bi < NB; ++bi) {
    for (int bj = 0; bj < NB; ++bj) {
      const NodeId owner = OwnerOf(bi, bj, P);
      const double* got =
          reinterpret_cast<const double*>(sys.NodeMemory(owner, BlockAddr(bi, bj)));
      const double* want =
          &reference_[static_cast<size_t>((bi * NB + bj)) * static_cast<size_t>(B * B)];
      for (int e = 0; e < B * B; ++e) {
        if (got[e] != want[e]) {
          if (why != nullptr) {
            *why = "LU: block (" + std::to_string(bi) + "," + std::to_string(bj) +
                   ") element " + std::to_string(e) + " mismatch: got " +
                   std::to_string(got[e]) + " want " + std::to_string(want[e]);
          }
          return false;
        }
      }
    }
  }
  return true;
}

namespace {
const AppRegistrar kLuRegistrar("lu", [](AppScale scale, std::optional<uint64_t> seed) {
  LuConfig cfg;
  switch (scale) {
    case AppScale::kTiny:
      cfg.n = 128;
      cfg.block = 16;
      break;
    case AppScale::kDefault:
      cfg.n = 1024;
      cfg.block = 32;
      break;
    case AppScale::kPaper:
      cfg.n = 2048;
      cfg.block = 32;
      break;
  }
  if (seed) {
    cfg.seed = *seed;
  }
  return std::make_unique<LuApp>(cfg);
});
}  // namespace

}  // namespace hlrc

// Water-Nsquared: O(n^2/2) molecular dynamics with a cutoff radius.
// Contiguous molecule partitions; each node updates its own molecules and
// accumulates forces into the following n/2 molecules under per-partition
// locks — migratory, coarse-grained multiple-writer sharing (paper §4.1).
#ifndef SRC_APPS_WATER_NSQUARED_H_
#define SRC_APPS_WATER_NSQUARED_H_

#include <vector>

#include "src/apps/app.h"

namespace hlrc {

struct WaterNsqConfig {
  int molecules = 512;  // Must be divisible by the node count.
  int steps = 3;
  double box = 16.0;    // Simulation box edge length.
  double cutoff = 4.0;  // Interaction cutoff radius.
  double dt = 0.002;
  uint64_t seed = 4242;
};

class WaterNsqApp : public App {
 public:
  explicit WaterNsqApp(const WaterNsqConfig& cfg) : cfg_(cfg) {}

  std::string name() const override { return "Water-Nsquared"; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  const WaterNsqConfig& config() const { return cfg_; }

 private:
  Task<void> NodeMain(NodeContext& ctx);
  void InitMolecules(double* pos, double* vel) const;

  // Pair interaction force on molecule i from j (both-side accumulation is
  // done by the caller). Returns flops performed.
  static int64_t PairForce(const double* pos, int i, int j, double box, double cutoff2,
                           double* fx, double* fy, double* fz);

  WaterNsqConfig cfg_;
  GlobalAddr pos_ = 0;
  GlobalAddr vel_ = 0;
  GlobalAddr frc_ = 0;
  std::vector<double> ref_pos_;
  std::vector<double> ref_vel_;
};

}  // namespace hlrc

#endif  // SRC_APPS_WATER_NSQUARED_H_

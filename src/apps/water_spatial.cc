#include "src/apps/water_spatial.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/apps/md_common.h"
#include "src/common/rng.h"
#include "src/svm/partition.h"

namespace hlrc {
namespace {

constexpr int kLockBase = 300;  // Per-partition cell-directory locks.

}  // namespace

void WaterSpApp::Setup(System& sys) {
  const int64_t arr = static_cast<int64_t>(cfg_.molecules) * 3 * 8;
  pos_ = sys.space().AllocPageAligned(arr);
  vel_ = sys.space().AllocPageAligned(arr);
  frc_ = sys.space().AllocPageAligned(arr);
  cells_ = sys.space().AllocPageAligned(static_cast<int64_t>(NumCells()) * CellInts() * 4);
}

int WaterSpApp::CellOfPos(const double* p) const {
  const double cell_size = cfg_.box / cfg_.cells;
  auto clampc = [this](double v) {
    int c = static_cast<int>(v);
    if (c < 0) {
      c = 0;
    }
    if (c >= cfg_.cells) {
      c = cfg_.cells - 1;
    }
    return c;
  };
  const int cx = clampc(p[0] / cell_size);
  const int cy = clampc(p[1] / cell_size);
  const int cz = clampc(p[2] / cell_size);
  return CellIndex(cx, cy, cz);
}

NodeId WaterSpApp::OwnerOfCell(int cell, int nodes) const {
  return static_cast<NodeId>(static_cast<int64_t>(cell) * nodes / NumCells());
}

void WaterSpApp::ZBand(int layers, int nodes, NodeId id, int* first, int* last) {
  const int per = layers / nodes;
  const int extra = layers % nodes;
  *first = id * per + std::min<int>(id, extra);
  *last = *first + per - 1 + (id < extra ? 1 : 0);
}

void WaterSpApp::InitState(double* pos, double* vel, int32_t* cells) const {
  Rng rng(cfg_.seed);
  std::memset(cells, 0, static_cast<size_t>(NumCells()) * static_cast<size_t>(CellInts()) * 4);
  for (int m = 0; m < cfg_.molecules; ++m) {
    for (int d = 0; d < 3; ++d) {
      pos[m * 3 + d] = rng.NextDouble() * cfg_.box;
      vel[m * 3 + d] = (rng.NextDouble() - 0.5) * 0.1;
    }
    const int c = CellOfPos(&pos[m * 3]);
    int32_t* cell = &cells[static_cast<size_t>(c) * static_cast<size_t>(CellInts())];
    HLRC_CHECK_MSG(cell[0] < cfg_.cell_capacity, "cell %d overflow at init", c);
    cell[1 + cell[0]] = m;
    ++cell[0];
  }
}

Task<void> WaterSpApp::NodeMain(NodeContext& ctx) {
  const int n = cfg_.molecules;
  const int p = ctx.nodes();
  const int me = ctx.id();
  const int C = cfg_.cells;
  const int nc = NumCells();
  const int64_t cell_bytes = CellInts() * 4;
  const double cell_size = cfg_.box / C;
  const double cutoff2 = cell_size * cell_size;
  const int64_t arr3 = static_cast<int64_t>(n) * 3 * 8;

  // Contiguous cell-index ranges per node (the inverse of ContiguousOwner:
  // node me owns cells [ceil(me*nc/p), ceil((me+1)*nc/p) - 1]).
  Band cells_band;
  cells_band.first = static_cast<int>((static_cast<int64_t>(me) * nc + p - 1) / p);
  cells_band.last = static_cast<int>((static_cast<int64_t>(me + 1) * nc + p - 1) / p) - 1;
  const int cfirst = cells_band.first;
  const int clast = cells_band.last;

  if (me == 0) {
    const std::vector<NodeContext::Range> ranges0 = {{pos_, arr3, true},
                         {vel_, arr3, true},
                         {frc_, arr3, true},
                         {cells_, static_cast<int64_t>(nc) * cell_bytes, true}};
    co_await ctx.Access(ranges0);
    InitState(ctx.Ptr<double>(pos_), ctx.Ptr<double>(vel_), ctx.Ptr<int32_t>(cells_));
    std::memset(ctx.Ptr<double>(frc_), 0, static_cast<size_t>(arr3));
    co_await ctx.ComputeFlops(10ll * n);
  }
  co_await ctx.Barrier(0);

  for (int step = 0; step < cfg_.steps; ++step) {
    // ---- Force phase: for each molecule in an owned cell, sum interactions
    // with molecules in the 27 surrounding cells (one-sided accumulation, so
    // no remote force writes). Boundary cells and the positions of the
    // molecules in them come from neighbor partitions.
    int64_t flops = 0;
    for (int c = cfirst; c <= clast; ++c) {
      co_await ctx.Read(CellAddr(c), cell_bytes);
      const int32_t* cell = ctx.Ptr<int32_t>(CellAddr(c));
      const int count = cell[0];
      if (count == 0) {
        continue;
      }
      const int cx = c % C;
      const int cy = (c / C) % C;
      const int cz = c / (C * C);

      // Gather neighbor cells (with wrap-around), reading as needed.
      std::vector<int> nbr_mols;
      for (int dz = -1; dz <= 1; ++dz) {
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int c2 = CellIndex((cx + dx + C) % C, (cy + dy + C) % C, (cz + dz + C) % C);
            co_await ctx.Read(CellAddr(c2), cell_bytes);
            const int32_t* cell2 = ctx.Ptr<int32_t>(CellAddr(c2));
            for (int k = 0; k < cell2[0]; ++k) {
              nbr_mols.push_back(cell2[1 + k]);
            }
          }
        }
      }
      std::sort(nbr_mols.begin(), nbr_mols.end());
      nbr_mols.erase(std::unique(nbr_mols.begin(), nbr_mols.end()), nbr_mols.end());
      for (int m2 : nbr_mols) {
        if (ctx.NeedsAccess(pos_ + static_cast<GlobalAddr>(m2) * 24, 24, false)) {
          co_await ctx.Read(pos_ + static_cast<GlobalAddr>(m2) * 24, 24);
        }
      }

      const double* pos = ctx.Ptr<double>(pos_);
      for (int k = 0; k < count; ++k) {
        const int m = cell[1 + k];
        double sx = 0;
        double sy = 0;
        double sz = 0;
        for (int m2 : nbr_mols) {
          if (m2 == m) {
            continue;
          }
          double fx = 0;
          double fy = 0;
          double fz = 0;
          flops += md::PairForce(pos, m, m2, cfg_.box, cutoff2, &fx, &fy, &fz) + 3;
          sx += fx;
          sy += fy;
          sz += fz;
        }
        co_await ctx.Write(frc_ + static_cast<GlobalAddr>(m) * 24, 24);
        double* frc = ctx.Ptr<double>(frc_);
        frc[m * 3 + 0] = sx;
        frc[m * 3 + 1] = sy;
        frc[m * 3 + 2] = sz;
      }
    }
    co_await ctx.ComputeFlops(flops);
    co_await ctx.Barrier(1);

    // ---- Update phase: integrate the molecules of owned cells and collect
    // migrations. Cell lists are not mutated here; migrations apply in their
    // own barrier-separated phase so no node reads a list while another
    // inserts into it.
    struct Move {
      int mol;
      int from;
      int to;
    };
    std::vector<Move> moves;
    for (int c = cfirst; c <= clast; ++c) {
      const int32_t* cell = ctx.Ptr<int32_t>(CellAddr(c));
      for (int k = 0; k < cell[0]; ++k) {
        const int m = cell[1 + k];
        const std::vector<NodeContext::Range> ranges1 = {{frc_ + static_cast<GlobalAddr>(m) * 24, 24, false},
                             {pos_ + static_cast<GlobalAddr>(m) * 24, 24, true},
                             {vel_ + static_cast<GlobalAddr>(m) * 24, 24, true}};
        co_await ctx.Access(ranges1);
        double* pos = ctx.Ptr<double>(pos_);
        double* vel = ctx.Ptr<double>(vel_);
        const double* frc = ctx.Ptr<double>(frc_);
        for (int d = 0; d < 3; ++d) {
          vel[m * 3 + d] += frc[m * 3 + d] * cfg_.dt;
          double x = pos[m * 3 + d] + vel[m * 3 + d] * cfg_.dt;
          if (x < 0) {
            x += cfg_.box;
          }
          if (x >= cfg_.box) {
            x -= cfg_.box;
          }
          pos[m * 3 + d] = x;
        }
        last_writer_[static_cast<size_t>(m)] = me;
        const int c2 = CellOfPos(&pos[m * 3]);
        if (c2 != c) {
          moves.push_back(Move{m, c, c2});
        }
      }
    }
    co_await ctx.ComputeFlops(15ll * (clast - cfirst + 1));
    co_await ctx.Barrier(2);

    // ---- Migration phase. All cell-list mutations take the owning
    // partition's lock; molecules migrate slowly so this is infrequent
    // (paper §4.1).
    std::sort(moves.begin(), moves.end(), [this, p](const Move& a, const Move& b) {
      return OwnerOfCell(a.to, p) < OwnerOfCell(b.to, p);
    });
    if (!moves.empty()) {
      // Removals (all in the own partition).
      co_await ctx.Lock(kLockBase + me);
      for (const Move& mv : moves) {
        co_await ctx.Write(CellAddr(mv.from), cell_bytes);
        int32_t* cell = ctx.Ptr<int32_t>(CellAddr(mv.from));
        for (int k = 0; k < cell[0]; ++k) {
          if (cell[1 + k] == mv.mol) {
            cell[1 + k] = cell[cell[0]];  // Swap with last.
            --cell[0];
            break;
          }
        }
      }
      co_await ctx.Unlock(kLockBase + me);
      // Insertions, grouped by target partition.
      size_t i = 0;
      while (i < moves.size()) {
        const NodeId owner = OwnerOfCell(moves[i].to, p);
        co_await ctx.Lock(kLockBase + owner);
        while (i < moves.size() && OwnerOfCell(moves[i].to, p) == owner) {
          co_await ctx.Write(CellAddr(moves[i].to), cell_bytes);
          int32_t* cell = ctx.Ptr<int32_t>(CellAddr(moves[i].to));
          HLRC_CHECK_MSG(cell[0] < cfg_.cell_capacity, "cell %d overflow", moves[i].to);
          cell[1 + cell[0]] = moves[i].mol;
          ++cell[0];
          ++i;
        }
        co_await ctx.Unlock(kLockBase + owner);
      }
    }
    co_await ctx.Barrier(3);
  }
}

System::Program WaterSpApp::Program() {
  last_writer_.assign(static_cast<size_t>(cfg_.molecules), 0);
  return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
}

void WaterSpApp::ReferenceStep(std::vector<double>* pos, std::vector<double>* vel,
                               std::vector<std::vector<int>>* cells) const {
  const int n = cfg_.molecules;
  const int C = cfg_.cells;
  const double cell_size = cfg_.box / C;
  const double cutoff2 = cell_size * cell_size;
  std::vector<double> frc(static_cast<size_t>(n) * 3, 0.0);

  for (int c = 0; c < NumCells(); ++c) {
    const int cx = c % C;
    const int cy = (c / C) % C;
    const int cz = c / (C * C);
    std::vector<int> nbr;
    for (int dz = -1; dz <= 1; ++dz) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int c2 = CellIndex((cx + dx + C) % C, (cy + dy + C) % C, (cz + dz + C) % C);
          for (int m2 : (*cells)[static_cast<size_t>(c2)]) {
            nbr.push_back(m2);
          }
        }
      }
    }
    std::sort(nbr.begin(), nbr.end());
    nbr.erase(std::unique(nbr.begin(), nbr.end()), nbr.end());
    for (int m : (*cells)[static_cast<size_t>(c)]) {
      double sx = 0;
      double sy = 0;
      double sz = 0;
      for (int m2 : nbr) {
        if (m2 == m) {
          continue;
        }
        double fx = 0;
        double fy = 0;
        double fz = 0;
        md::PairForce(pos->data(), m, m2, cfg_.box, cutoff2, &fx, &fy, &fz);
        sx += fx;
        sy += fy;
        sz += fz;
      }
      frc[static_cast<size_t>(m) * 3 + 0] = sx;
      frc[static_cast<size_t>(m) * 3 + 1] = sy;
      frc[static_cast<size_t>(m) * 3 + 2] = sz;
    }
  }

  std::vector<std::vector<int>> next(static_cast<size_t>(NumCells()));
  for (int c = 0; c < NumCells(); ++c) {
    for (int m : (*cells)[static_cast<size_t>(c)]) {
      for (int d = 0; d < 3; ++d) {
        (*vel)[static_cast<size_t>(m) * 3 + d] += frc[static_cast<size_t>(m) * 3 + d] * cfg_.dt;
        double x = (*pos)[static_cast<size_t>(m) * 3 + d] +
                   (*vel)[static_cast<size_t>(m) * 3 + d] * cfg_.dt;
        if (x < 0) {
          x += cfg_.box;
        }
        if (x >= cfg_.box) {
          x -= cfg_.box;
        }
        (*pos)[static_cast<size_t>(m) * 3 + d] = x;
      }
      next[static_cast<size_t>(CellOfPos(&(*pos)[static_cast<size_t>(m) * 3]))].push_back(m);
    }
  }
  *cells = std::move(next);
}

bool WaterSpApp::Verify(System& sys, std::string* why) {
  const int n = cfg_.molecules;
  if (ref_pos_.empty()) {
    ref_pos_.resize(static_cast<size_t>(n) * 3);
    ref_vel_.resize(static_cast<size_t>(n) * 3);
    std::vector<int32_t> cells_flat(static_cast<size_t>(NumCells()) *
                                    static_cast<size_t>(CellInts()));
    InitState(ref_pos_.data(), ref_vel_.data(), cells_flat.data());
    std::vector<std::vector<int>> cells(static_cast<size_t>(NumCells()));
    for (int c = 0; c < NumCells(); ++c) {
      const int32_t* cell = &cells_flat[static_cast<size_t>(c) * static_cast<size_t>(CellInts())];
      for (int k = 0; k < cell[0]; ++k) {
        cells[static_cast<size_t>(c)].push_back(cell[1 + k]);
      }
    }
    for (int step = 0; step < cfg_.steps; ++step) {
      ReferenceStep(&ref_pos_, &ref_vel_, &cells);
    }
  }

  for (int m = 0; m < n; ++m) {
    const NodeId node = last_writer_[static_cast<size_t>(m)];
    const double* pos = reinterpret_cast<const double*>(
        sys.NodeMemory(node, pos_ + static_cast<GlobalAddr>(m) * 24));
    for (int d = 0; d < 3; ++d) {
      const double want = ref_pos_[static_cast<size_t>(m) * 3 + static_cast<size_t>(d)];
      if (std::fabs(pos[d] - want) > 1e-7 || !std::isfinite(pos[d])) {
        if (why != nullptr) {
          *why = "Water-Spatial: molecule " + std::to_string(m) + " dim " + std::to_string(d) +
                 ": got " + std::to_string(pos[d]) + " want " + std::to_string(want);
        }
        return false;
      }
    }
  }
  return true;
}

namespace {
const AppRegistrar kWaterSpRegistrar("water-sp",
                                     [](AppScale scale, std::optional<uint64_t> seed) {
                                       WaterSpConfig cfg;
                                       switch (scale) {
                                         case AppScale::kTiny:
                                           cfg.molecules = 128;
                                           cfg.cells = 4;
                                           cfg.steps = 2;
                                           cfg.box = 8.0;
                                           break;
                                         case AppScale::kDefault:
                                           // Density ~8 molecules/cell: enough pair work per
                                           // step for the paper's compute:communication regime.
                                           cfg.molecules = 4096;
                                           cfg.cells = 8;
                                           cfg.steps = 3;
                                           break;
                                         case AppScale::kPaper:
                                           cfg.molecules = 4096;
                                           cfg.cells = 16;
                                           cfg.steps = 3;
                                           cfg.box = 32.0;
                                           break;
                                       }
                                       if (seed) {
                                         cfg.seed = *seed;
                                       }
                                       return std::make_unique<WaterSpApp>(cfg);
                                     });
}  // namespace

}  // namespace hlrc

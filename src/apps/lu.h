// Blocked dense LU factorization without pivoting (Splash-2 LU, contiguous
// blocks). Coarse-grained single-writer sharing, low synchronization
// frequency, inherently imbalanced computation (paper §4.1).
#ifndef SRC_APPS_LU_H_
#define SRC_APPS_LU_H_

#include <vector>

#include "src/apps/app.h"

namespace hlrc {

struct LuConfig {
  int n = 512;     // Matrix dimension.
  int block = 32;  // Block size; n % block == 0.
  uint64_t seed = 12345;
};

class LuApp : public App {
 public:
  explicit LuApp(const LuConfig& cfg) : cfg_(cfg) {}

  std::string name() const override { return "LU"; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  // Total floating-point operations of the factorization (for reporting).
  int64_t TotalFlops() const;

  const LuConfig& config() const { return cfg_; }

 private:
  int nb() const { return cfg_.n / cfg_.block; }
  // Owner of block (bi, bj): 2-D scatter over a near-square processor grid.
  NodeId OwnerOf(int bi, int bj, int nodes) const;
  GlobalAddr BlockAddr(int bi, int bj) const;

  Task<void> NodeMain(NodeContext& ctx);

  LuConfig cfg_;
  GlobalAddr matrix_ = 0;
  int64_t block_bytes_ = 0;
  std::vector<double> reference_;  // Sequential result, filled lazily.
};

}  // namespace hlrc

#endif  // SRC_APPS_LU_H_

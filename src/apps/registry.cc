#include <memory>
#include <optional>

#include "src/apps/app.h"
#include "src/apps/fft.h"
#include "src/apps/lu.h"
#include "src/apps/raytrace.h"
#include "src/apps/sor.h"
#include "src/apps/water_nsquared.h"
#include "src/apps/water_spatial.h"
#include "src/common/check.h"

namespace hlrc {

const std::vector<std::string>& AppNames() {
  static const std::vector<std::string> kNames = {"lu", "sor", "water-nsq", "water-sp",
                                                  "raytrace"};
  return kNames;
}

const std::vector<std::string>& AllAppNames() {
  static const std::vector<std::string> kNames = {"lu",       "sor", "water-nsq",
                                                  "water-sp", "raytrace", "fft"};
  return kNames;
}

std::unique_ptr<App> MakeApp(const std::string& name, AppScale scale,
                             std::optional<uint64_t> seed) {
  if (name == "lu") {
    LuConfig cfg;
    switch (scale) {
      case AppScale::kTiny:
        cfg.n = 128;
        cfg.block = 16;
        break;
      case AppScale::kDefault:
        cfg.n = 1024;
        cfg.block = 32;
        break;
      case AppScale::kPaper:
        cfg.n = 2048;
        cfg.block = 32;
        break;
    }
    if (seed) {
      cfg.seed = *seed;
    }
    return std::make_unique<LuApp>(cfg);
  }
  if (name == "sor") {
    SorConfig cfg;
    switch (scale) {
      case AppScale::kTiny:
        cfg.rows = 128;
        cfg.cols = 128;
        cfg.iterations = 4;
        break;
      case AppScale::kDefault:
        cfg.rows = 2048;
        cfg.cols = 1024;
        cfg.iterations = 20;
        break;
      case AppScale::kPaper:
        cfg.rows = 2048;
        cfg.cols = 2048;
        cfg.iterations = 51;
        break;
    }
    if (seed) {
      cfg.seed = *seed;
    }
    return std::make_unique<SorApp>(cfg);
  }
  if (name == "water-nsq") {
    WaterNsqConfig cfg;
    switch (scale) {
      case AppScale::kTiny:
        cfg.molecules = 128;
        cfg.steps = 2;
        break;
      case AppScale::kDefault:
        cfg.molecules = 2048;
        cfg.steps = 3;
        break;
      case AppScale::kPaper:
        cfg.molecules = 4096;
        cfg.steps = 3;
        break;
    }
    if (seed) {
      cfg.seed = *seed;
    }
    return std::make_unique<WaterNsqApp>(cfg);
  }
  if (name == "water-sp") {
    WaterSpConfig cfg;
    switch (scale) {
      case AppScale::kTiny:
        cfg.molecules = 128;
        cfg.cells = 4;
        cfg.steps = 2;
        cfg.box = 8.0;
        break;
      case AppScale::kDefault:
        // Density ~8 molecules/cell: enough pair work per step for the
        // paper's compute:communication regime.
        cfg.molecules = 4096;
        cfg.cells = 8;
        cfg.steps = 3;
        break;
      case AppScale::kPaper:
        cfg.molecules = 4096;
        cfg.cells = 16;
        cfg.steps = 3;
        cfg.box = 32.0;
        break;
    }
    if (seed) {
      cfg.seed = *seed;
    }
    return std::make_unique<WaterSpApp>(cfg);
  }
  if (name == "fft") {
    FftConfig cfg;
    switch (scale) {
      case AppScale::kTiny:
        cfg.n = 32;
        break;
      case AppScale::kDefault:
        cfg.n = 256;
        break;
      case AppScale::kPaper:
        cfg.n = 512;
        break;
    }
    if (seed) {
      cfg.seed = *seed;
    }
    return std::make_unique<FftApp>(cfg);
  }
  if (name == "raytrace") {
    RaytraceConfig cfg;
    switch (scale) {
      case AppScale::kTiny:
        cfg.width = 64;
        cfg.height = 64;
        cfg.spheres = 12;
        break;
      case AppScale::kDefault:
        cfg.width = 256;
        cfg.height = 256;
        break;
      case AppScale::kPaper:
        cfg.width = 256;
        cfg.height = 256;
        cfg.spheres = 64;
        break;
    }
    if (seed) {
      cfg.seed = *seed;
    }
    return std::make_unique<RaytraceApp>(cfg);
  }
  HLRC_CHECK_MSG(false, "unknown app '%s'", name.c_str());
  return nullptr;
}

AppRunResult RunApp(App& app, const SimConfig& config) {
  System sys(config);
  app.Setup(sys);
  sys.Run(app.Program());
  AppRunResult result;
  result.report = sys.report();
  result.verified = app.Verify(sys, &result.why);
  return result;
}

}  // namespace hlrc

// Name→factory application registry. Applications self-register with
// AppRegistrar from their own translation units (see the bottom of each
// app's .cc); this file only owns the table and the fixed paper-ordering
// lists. New applications — including out-of-tree extensions like the
// synthetic workloads in src/wkld — need no edit here.
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "src/apps/app.h"
#include "src/common/check.h"

namespace hlrc {

namespace {

std::map<std::string, AppRegistrar::Factory>& Registry() {
  // Leaked Meyer singleton: safe to use from registrars in any translation
  // unit regardless of static-initialization order.
  static auto* registry = new std::map<std::string, AppRegistrar::Factory>();
  return *registry;
}

}  // namespace

AppRegistrar::AppRegistrar(const char* name, Factory factory) {
  const bool inserted = Registry().emplace(name, std::move(factory)).second;
  HLRC_CHECK_MSG(inserted, "duplicate app registration '%s'", name);
}

const std::vector<std::string>& AppNames() {
  static const std::vector<std::string> kNames = {"lu", "sor", "water-nsq", "water-sp",
                                                  "raytrace"};
  return kNames;
}

const std::vector<std::string>& AllAppNames() {
  static const std::vector<std::string> kNames = {"lu",       "sor", "water-nsq",
                                                  "water-sp", "raytrace", "fft"};
  return kNames;
}

std::vector<std::string> RegisteredAppNames() {
  std::vector<std::string> names;
  names.reserve(Registry().size());
  for (const auto& [name, factory] : Registry()) {
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<App> TryMakeApp(const std::string& name, AppScale scale,
                                std::optional<uint64_t> seed) {
  const auto it = Registry().find(name);
  if (it == Registry().end()) {
    return nullptr;
  }
  return it->second(scale, seed);
}

std::unique_ptr<App> MakeApp(const std::string& name, AppScale scale,
                             std::optional<uint64_t> seed) {
  std::unique_ptr<App> app = TryMakeApp(name, scale, seed);
  HLRC_CHECK_MSG(app != nullptr, "unknown app '%s'", name.c_str());
  return app;
}

AppRunResult RunApp(App& app, const SimConfig& config) {
  System sys(config);
  app.Setup(sys);
  sys.Run(app.Program());
  AppRunResult result;
  result.report = sys.report();
  result.verified = app.Verify(sys, &result.why);
  return result;
}

}  // namespace hlrc

// Red-black successive over-relaxation (the TreadMarks SOR kernel).
// Row bands per node; nearest-neighbor boundary-row communication at
// barriers; single-writer pages (paper §4.1).
#ifndef SRC_APPS_SOR_H_
#define SRC_APPS_SOR_H_

#include <vector>

#include "src/apps/app.h"

namespace hlrc {

struct SorConfig {
  int rows = 512;
  int cols = 512;
  int iterations = 10;
  // Paper §4.8 experiment: zero interior (writes that change nothing produce
  // no diffs) vs random initialization.
  bool zero_interior = false;
  uint64_t seed = 999;
};

class SorApp : public App {
 public:
  explicit SorApp(const SorConfig& cfg) : cfg_(cfg) {}

  std::string name() const override { return "SOR"; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  const SorConfig& config() const { return cfg_; }

 private:
  GlobalAddr RowAddr(GlobalAddr base, int row) const;
  Task<void> NodeMain(NodeContext& ctx);
  void InitRow(double* row_red, double* row_black, int row) const;
  static void BandOf(int rows, int nodes, NodeId id, int* first, int* last);

  SorConfig cfg_;
  GlobalAddr red_ = 0;
  GlobalAddr black_ = 0;
  std::vector<double> ref_red_;
  std::vector<double> ref_black_;
};

}  // namespace hlrc

#endif  // SRC_APPS_SOR_H_

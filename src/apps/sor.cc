#include "src/apps/sor.h"

#include <cstring>

#include "src/common/rng.h"
#include "src/svm/partition.h"

namespace hlrc {
namespace {

// One red-black relaxation sweep over [first, last] of `dst`, reading `src`.
// 4 flops per element.
void SweepRows(double* dst, const double* src, int cols, int first, int last, int rows) {
  for (int i = first; i <= last; ++i) {
    for (int j = 0; j < cols; ++j) {
      const double up = i > 0 ? src[(i - 1) * cols + j] : 0.0;
      const double down = i < rows - 1 ? src[(i + 1) * cols + j] : 0.0;
      const double left = j > 0 ? src[i * cols + j - 1] : 0.0;
      const double right = j < cols - 1 ? src[i * cols + j + 1] : 0.0;
      dst[i * cols + j] = 0.25 * (up + down + left + right);
    }
  }
}

}  // namespace

void SorApp::Setup(System& sys) {
  const int64_t bytes = static_cast<int64_t>(cfg_.rows) * cfg_.cols * 8;
  red_ = sys.space().AllocPageAligned(bytes);
  black_ = sys.space().AllocPageAligned(bytes);
}

GlobalAddr SorApp::RowAddr(GlobalAddr base, int row) const {
  return base + static_cast<GlobalAddr>(row) * static_cast<GlobalAddr>(cfg_.cols) * 8;
}

void SorApp::BandOf(int rows, int nodes, NodeId id, int* first, int* last) {
  const Band band = hlrc::BandOf(rows, nodes, id);
  *first = band.first;
  *last = band.last;
}

void SorApp::InitRow(double* row_red, double* row_black, int row) const {
  if (cfg_.zero_interior) {
    // Paper §4.8: zeros except at the edges. The interior stays zero for many
    // iterations, so early writes change nothing and produce no diffs.
    const double edge = (row == 0 || row == cfg_.rows - 1) ? 1.0 : 0.0;
    for (int j = 0; j < cfg_.cols; ++j) {
      row_red[j] = row_black[j] = edge;
    }
  } else {
    // Per-row seeding so each node can initialize its own band (the home
    // effect requires owners to write their own partitions).
    Rng rng(cfg_.seed + static_cast<uint64_t>(row) * 2654435761u);
    for (int j = 0; j < cfg_.cols; ++j) {
      row_red[j] = rng.NextDouble();
    }
    for (int j = 0; j < cfg_.cols; ++j) {
      row_black[j] = rng.NextDouble();
    }
  }
}

Task<void> SorApp::NodeMain(NodeContext& ctx) {
  const int64_t row_bytes = static_cast<int64_t>(cfg_.cols) * 8;
  int first = 0;
  int last = 0;
  BandOf(cfg_.rows, ctx.nodes(), ctx.id(), &first, &last);
  const int band_rows = last - first + 1;

  // Distributed initialization: every node initializes its own band, so the
  // writer of each page is its home under block placement.
  {
    const std::vector<NodeContext::Range> ranges0 = {
        {RowAddr(red_, first), band_rows * row_bytes, true},
        {RowAddr(black_, first), band_rows * row_bytes, true}};
    co_await ctx.Access(ranges0);
    for (int i = first; i <= last; ++i) {
      InitRow(ctx.Ptr<double>(RowAddr(red_, i)), ctx.Ptr<double>(RowAddr(black_, i)), i);
    }
    co_await ctx.ComputeFlops(2ll * band_rows * cfg_.cols);
  }
  co_await ctx.Barrier(0);

  for (int iter = 0; iter < cfg_.iterations; ++iter) {
    // Red sweep reads black rows [first-1, last+1].
    {
      const int rfirst = std::max(first - 1, 0);
      const int rlast = std::min(last + 1, cfg_.rows - 1);
      const std::vector<NodeContext::Range> ranges1 = {{RowAddr(black_, rfirst), (rlast - rfirst + 1) * row_bytes, false},
                           {RowAddr(red_, first), band_rows * row_bytes, true}};
      co_await ctx.Access(ranges1);
      SweepRows(ctx.Ptr<double>(red_), ctx.Ptr<double>(black_), cfg_.cols, first, last,
                cfg_.rows);
      co_await ctx.ComputeFlops(4ll * band_rows * cfg_.cols);
    }
    co_await ctx.Barrier(1);
    // Black sweep reads red rows [first-1, last+1].
    {
      const int rfirst = std::max(first - 1, 0);
      const int rlast = std::min(last + 1, cfg_.rows - 1);
      const std::vector<NodeContext::Range> ranges2 = {{RowAddr(red_, rfirst), (rlast - rfirst + 1) * row_bytes, false},
                           {RowAddr(black_, first), band_rows * row_bytes, true}};
      co_await ctx.Access(ranges2);
      SweepRows(ctx.Ptr<double>(black_), ctx.Ptr<double>(red_), cfg_.cols, first, last,
                cfg_.rows);
      co_await ctx.ComputeFlops(4ll * band_rows * cfg_.cols);
    }
    co_await ctx.Barrier(2);
  }
}

System::Program SorApp::Program() {
  return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
}

bool SorApp::Verify(System& sys, std::string* why) {
  const size_t total = static_cast<size_t>(cfg_.rows) * static_cast<size_t>(cfg_.cols);
  if (ref_red_.empty()) {
    ref_red_.resize(total);
    ref_black_.resize(total);
    for (int i = 0; i < cfg_.rows; ++i) {
      InitRow(&ref_red_[static_cast<size_t>(i) * static_cast<size_t>(cfg_.cols)],
              &ref_black_[static_cast<size_t>(i) * static_cast<size_t>(cfg_.cols)], i);
    }
    for (int iter = 0; iter < cfg_.iterations; ++iter) {
      SweepRows(ref_red_.data(), ref_black_.data(), cfg_.cols, 0, cfg_.rows - 1, cfg_.rows);
      SweepRows(ref_black_.data(), ref_red_.data(), cfg_.cols, 0, cfg_.rows - 1, cfg_.rows);
    }
  }

  // Each band's final rows live at their owner.
  for (NodeId n = 0; n < sys.config().nodes; ++n) {
    int first = 0;
    int last = 0;
    BandOf(cfg_.rows, sys.config().nodes, n, &first, &last);
    const double* red = reinterpret_cast<const double*>(sys.NodeMemory(n, RowAddr(red_, first)));
    const double* black =
        reinterpret_cast<const double*>(sys.NodeMemory(n, RowAddr(black_, first)));
    for (int i = 0; i <= last - first; ++i) {
      for (int j = 0; j < cfg_.cols; ++j) {
        const size_t ref_idx =
            (static_cast<size_t>(first + i)) * static_cast<size_t>(cfg_.cols) +
            static_cast<size_t>(j);
        if (red[i * cfg_.cols + j] != ref_red_[ref_idx] ||
            black[i * cfg_.cols + j] != ref_black_[ref_idx]) {
          if (why != nullptr) {
            *why = "SOR: node " + std::to_string(n) + " row " + std::to_string(first + i) +
                   " col " + std::to_string(j) + " mismatch";
          }
          return false;
        }
      }
    }
  }
  return true;
}

namespace {
const AppRegistrar kSorRegistrar("sor", [](AppScale scale, std::optional<uint64_t> seed) {
  SorConfig cfg;
  switch (scale) {
    case AppScale::kTiny:
      cfg.rows = 128;
      cfg.cols = 128;
      cfg.iterations = 4;
      break;
    case AppScale::kDefault:
      cfg.rows = 2048;
      cfg.cols = 1024;
      cfg.iterations = 20;
      break;
    case AppScale::kPaper:
      cfg.rows = 2048;
      cfg.cols = 2048;
      cfg.iterations = 51;
      break;
  }
  if (seed) {
    cfg.seed = *seed;
  }
  return std::make_unique<SorApp>(cfg);
});
}  // namespace

}  // namespace hlrc

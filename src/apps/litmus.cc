#include "src/apps/litmus.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace hlrc {
namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

// Base with the shared plumbing: per-node desynchronization and the
// one-slot-per-page address helpers.
class LitmusBase : public LitmusTest {
 public:
  explicit LitmusBase(const LitmusConfig& cfg) : cfg_(cfg) {
    HLRC_CHECK(cfg_.nodes >= 2);
    HLRC_CHECK(cfg_.rounds >= 1);
  }

  System::Program Program() override {
    return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
  }

 protected:
  virtual Task<void> NodeMain(NodeContext& ctx) = 0;

  Rng NodeRng(NodeId n) const { return Rng(cfg_.seed ^ (kGolden * (static_cast<uint64_t>(n) + 1))); }

  // A small random compute burst: desynchronizes the nodes so the same
  // program produces different interleavings under different seeds even
  // before the explorer's chaos hooks bite.
  Task<void> Jiggle(NodeContext& ctx, Rng& rng) {
    co_await ctx.Compute(static_cast<SimTime>(rng.NextBounded(20000)));
  }

  // Word slot `n` in a region of one page per node.
  GlobalAddr PagedSlot(GlobalAddr base, int64_t page_size, NodeId n) const {
    return base + static_cast<GlobalAddr>(n) * static_cast<GlobalAddr>(page_size);
  }

  LitmusConfig cfg_;
};

// ---------------------------------------------------------------------------
// message-passing: writer publishes data then a flag under its lock; the
// left neighbor polls the flag under the same lock and, on seeing this
// round's flag, must read this round's data (anything older is
// happens-before-masked by the lock chain). The poll is bounded: missing the
// handoff is legal, reading stale data is not.

class MessagePassingLitmus : public LitmusBase {
 public:
  using LitmusBase::LitmusBase;
  std::string name() const override { return "message-passing"; }

  void Setup(System& sys) override {
    page_size_ = sys.config().page_size;
    data_ = sys.space().AllocPageAligned(cfg_.nodes * page_size_);
    flag_ = sys.space().AllocPageAligned(cfg_.nodes * page_size_);
  }

 protected:
  Task<void> NodeMain(NodeContext& ctx) override {
    Rng rng = NodeRng(ctx.id());
    const NodeId n = ctx.id();
    const NodeId left = (n + ctx.nodes() - 1) % ctx.nodes();
    constexpr int kMaxPolls = 8;
    for (int r = 0; r < cfg_.rounds; ++r) {
      co_await Jiggle(ctx, rng);
      co_await ctx.Lock(100 + n);
      co_await ctx.StoreWord(PagedSlot(data_, page_size_, n), LitmusValue(n, r, 0));
      co_await ctx.StoreWord(PagedSlot(flag_, page_size_, n), LitmusValue(n, r, 1));
      co_await ctx.Unlock(100 + n);
      for (int poll = 0; poll < kMaxPolls; ++poll) {
        co_await ctx.Lock(100 + left);
        const uint64_t f = co_await ctx.LoadWord(PagedSlot(flag_, page_size_, left));
        const bool handed_over = f == LitmusValue(left, r, 1);
        if (handed_over) {
          co_await ctx.LoadWord(PagedSlot(data_, page_size_, left));
        }
        co_await ctx.Unlock(100 + left);
        if (handed_over) {
          break;
        }
        co_await ctx.Compute(Micros(20) + static_cast<SimTime>(rng.NextBounded(30000)));
      }
      co_await ctx.Barrier(1 + (r & 1));
    }
  }

 private:
  int64_t page_size_ = 0;
  GlobalAddr data_ = 0;
  GlobalAddr flag_ = 0;
};

// ---------------------------------------------------------------------------
// store-buffer: every node stores to its own variable, then reads the
// others' with no synchronization (any unmasked value is legal — seeing the
// concurrent write or not are both fine), then re-reads after a barrier,
// where only this round's values are legal.

class StoreBufferLitmus : public LitmusBase {
 public:
  using LitmusBase::LitmusBase;
  std::string name() const override { return "store-buffer"; }

  void Setup(System& sys) override {
    page_size_ = sys.config().page_size;
    x_ = sys.space().AllocPageAligned(cfg_.nodes * page_size_);
  }

 protected:
  Task<void> NodeMain(NodeContext& ctx) override {
    Rng rng = NodeRng(ctx.id());
    const NodeId n = ctx.id();
    for (int r = 0; r < cfg_.rounds; ++r) {
      co_await ctx.Barrier(1 + (r & 1) * 2);
      co_await Jiggle(ctx, rng);
      co_await ctx.StoreWord(PagedSlot(x_, page_size_, n), LitmusValue(n, r, 0));
      co_await ctx.LoadWord(PagedSlot(x_, page_size_, (n + 1) % ctx.nodes()));
      co_await ctx.Barrier(2 + (r & 1) * 2);
      for (NodeId k = 0; k < ctx.nodes(); ++k) {
        if (k != n) {
          co_await ctx.LoadWord(PagedSlot(x_, page_size_, k));
        }
      }
    }
  }

 private:
  int64_t page_size_ = 0;
  GlobalAddr x_ = 0;
};

// ---------------------------------------------------------------------------
// lock-handoff: two counters, each protected by its own lock, incremented by
// every node each round. The lock chain totally orders the increments, so a
// read under the lock may only return the immediately preceding increment —
// any lost update or stale counter read is masked and flagged.

class LockHandoffLitmus : public LitmusBase {
 public:
  using LitmusBase::LitmusBase;
  std::string name() const override { return "lock-handoff"; }

  void Setup(System& sys) override {
    page_size_ = sys.config().page_size;
    ctr_ = sys.space().AllocPageAligned(2 * page_size_);
  }

 protected:
  Task<void> NodeMain(NodeContext& ctx) override {
    Rng rng = NodeRng(ctx.id());
    const NodeId n = ctx.id();
    for (int r = 0; r < cfg_.rounds; ++r) {
      for (int i = 0; i < 2; ++i) {
        // Alternate the counter order per (node, round): varied lock
        // contention without nesting (locks are never held together).
        const int c = ((n + r) & 1) != 0 ? 1 - i : i;
        co_await ctx.Lock(200 + c);
        const uint64_t v = co_await ctx.LoadWord(PagedSlot(ctr_, page_size_, c));
        co_await ctx.StoreWord(PagedSlot(ctr_, page_size_, c), v + 1);
        co_await ctx.Unlock(200 + c);
        co_await Jiggle(ctx, rng);
      }
    }
    co_await ctx.Barrier(1);
    // Every increment happens-before these reads: only the final counts are
    // unmasked.
    co_await ctx.LoadWord(PagedSlot(ctr_, page_size_, 0));
    co_await ctx.LoadWord(PagedSlot(ctr_, page_size_, 1));
  }

 private:
  int64_t page_size_ = 0;
  GlobalAddr ctr_ = 0;
};

// ---------------------------------------------------------------------------
// barrier-propagation: each round, every node rewrites one whole block (one
// page), rotating ownership so most writes target remotely-homed pages; after
// the barrier every node reads a sample of every block and only this round's
// values are legal. This is the litmus that deterministically catches a home
// that loses a diff flush or a node that loses an invalidation.

class BarrierPropagationLitmus : public LitmusBase {
 public:
  using LitmusBase::LitmusBase;
  std::string name() const override { return "barrier-propagation"; }

  void Setup(System& sys) override {
    page_size_ = sys.config().page_size;
    words_ = static_cast<int>(page_size_ / 8);
    a_ = sys.space().AllocPageAligned(cfg_.nodes * page_size_);
  }

 protected:
  Task<void> NodeMain(NodeContext& ctx) override {
    Rng rng = NodeRng(ctx.id());
    const NodeId n = ctx.id();
    for (int r = 0; r < cfg_.rounds; ++r) {
      const NodeId block = (n + r) % ctx.nodes();
      const GlobalAddr base = PagedSlot(a_, page_size_, block);
      co_await ctx.Barrier(1 + (r & 1) * 2);
      co_await Jiggle(ctx, rng);
      for (int k = 0; k < words_; ++k) {
        co_await ctx.StoreWord(base + static_cast<GlobalAddr>(k) * 8, LitmusValue(n, r, k));
      }
      co_await ctx.Barrier(2 + (r & 1) * 2);
      for (NodeId b = 0; b < ctx.nodes(); ++b) {
        const GlobalAddr bb = PagedSlot(a_, page_size_, b);
        co_await ctx.LoadWord(bb);
        co_await ctx.LoadWord(bb + static_cast<GlobalAddr>(words_ / 2) * 8);
        co_await ctx.LoadWord(bb + static_cast<GlobalAddr>(words_ - 1) * 8);
      }
    }
  }

 private:
  int64_t page_size_ = 0;
  int words_ = 0;
  GlobalAddr a_ = 0;
};

// ---------------------------------------------------------------------------
// false-sharing: all nodes concurrently write their own word of one shared
// page. Mid-round reads of the neighbors' words are unsynchronized (either
// the old or the new value is legal); after the barrier, every node must see
// every concurrent write — a diff/update merge that loses a word is flagged.

class FalseSharingLitmus : public LitmusBase {
 public:
  using LitmusBase::LitmusBase;
  std::string name() const override { return "false-sharing"; }

  void Setup(System& sys) override {
    HLRC_CHECK(cfg_.nodes * 8 <= sys.config().page_size);
    w_ = sys.space().AllocPageAligned(sys.config().page_size);
  }

 protected:
  Task<void> NodeMain(NodeContext& ctx) override {
    Rng rng = NodeRng(ctx.id());
    const NodeId n = ctx.id();
    for (int r = 0; r < cfg_.rounds; ++r) {
      co_await ctx.Barrier(1 + (r & 1) * 2);
      co_await Jiggle(ctx, rng);
      co_await ctx.StoreWord(w_ + static_cast<GlobalAddr>(n) * 8, LitmusValue(n, r, 0));
      co_await ctx.LoadWord(w_ + static_cast<GlobalAddr>((n + 1) % ctx.nodes()) * 8);
      co_await ctx.Barrier(2 + (r & 1) * 2);
      for (NodeId k = 0; k < ctx.nodes(); ++k) {
        co_await ctx.LoadWord(w_ + static_cast<GlobalAddr>(k) * 8);
      }
    }
  }

 private:
  GlobalAddr w_ = 0;
};

}  // namespace

const std::vector<std::string>& LitmusNames() {
  static const std::vector<std::string> names = {
      "message-passing", "store-buffer", "lock-handoff", "barrier-propagation",
      "false-sharing"};
  return names;
}

std::unique_ptr<LitmusTest> MakeLitmus(const std::string& name, const LitmusConfig& config) {
  if (name == "message-passing") {
    return std::make_unique<MessagePassingLitmus>(config);
  }
  if (name == "store-buffer") {
    return std::make_unique<StoreBufferLitmus>(config);
  }
  if (name == "lock-handoff") {
    return std::make_unique<LockHandoffLitmus>(config);
  }
  if (name == "barrier-propagation") {
    return std::make_unique<BarrierPropagationLitmus>(config);
  }
  if (name == "false-sharing") {
    return std::make_unique<FalseSharingLitmus>(config);
  }
  HLRC_CHECK_MSG(false, "unknown litmus test '%s'", name.c_str());
  return nullptr;
}

}  // namespace hlrc

// Water-Spatial: the same n-body problem solved with a 3-D linked-cell
// spatial directory. Nodes own contiguous slabs of cells; forces read
// boundary cells of neighboring partitions; molecules migrate slowly between
// cells, with cross-partition insertions protected by per-partition locks
// (paper §4.1).
#ifndef SRC_APPS_WATER_SPATIAL_H_
#define SRC_APPS_WATER_SPATIAL_H_

#include <vector>

#include "src/apps/app.h"

namespace hlrc {

struct WaterSpConfig {
  int molecules = 512;
  int cells = 8;         // Cells per dimension (cells^3 total).
  int cell_capacity = 31;
  int steps = 3;
  double box = 16.0;
  double dt = 0.002;
  uint64_t seed = 777;
};

class WaterSpApp : public App {
 public:
  explicit WaterSpApp(const WaterSpConfig& cfg) : cfg_(cfg) {}

  std::string name() const override { return "Water-Spatial"; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  const WaterSpConfig& config() const { return cfg_; }

 private:
  // Cell storage: per cell, [count, idx0, idx1, ...] as int32.
  int CellInts() const { return 1 + cfg_.cell_capacity; }
  int NumCells() const { return cfg_.cells * cfg_.cells * cfg_.cells; }
  int CellIndex(int cx, int cy, int cz) const {
    return (cz * cfg_.cells + cy) * cfg_.cells + cx;
  }
  GlobalAddr CellAddr(int cell) const {
    return cells_ + static_cast<GlobalAddr>(cell) * static_cast<GlobalAddr>(CellInts()) * 4;
  }
  int CellOfPos(const double* p) const;
  // Slab ownership: cells with z-layer in the node's band.
  NodeId OwnerOfCell(int cell, int nodes) const;
  static void ZBand(int layers, int nodes, NodeId id, int* first, int* last);

  Task<void> NodeMain(NodeContext& ctx);
  void InitState(double* pos, double* vel, int32_t* cells) const;

  // Reference implementation helpers (host side).
  void ReferenceStep(std::vector<double>* pos, std::vector<double>* vel,
                     std::vector<std::vector<int>>* cells) const;

  WaterSpConfig cfg_;
  GlobalAddr pos_ = 0;
  GlobalAddr vel_ = 0;
  GlobalAddr frc_ = 0;
  GlobalAddr cells_ = 0;
  std::vector<double> ref_pos_;
  std::vector<double> ref_vel_;
  // Host-side record of which node performed the final update of each
  // molecule (whose copy is therefore current), for verification.
  std::vector<NodeId> last_writer_;
};

}  // namespace hlrc

#endif  // SRC_APPS_WATER_SPATIAL_H_

// Shared molecular-dynamics helpers for the two Water applications.
#ifndef SRC_APPS_MD_COMMON_H_
#define SRC_APPS_MD_COMMON_H_

#include <cstdint>

namespace hlrc {
namespace md {

inline double Wrap(double d, double box) {
  if (d > box / 2) {
    return d - box;
  }
  if (d < -box / 2) {
    return d + box;
  }
  return d;
}

// Soft Lennard-Jones-like pair force on molecule i from j with a cutoff.
// Returns the flop count performed (cutoff-rejected pairs cost the distance
// computation only).
inline int64_t PairForce(const double* pos, int i, int j, double box, double cutoff2,
                         double* fx, double* fy, double* fz) {
  const double dx = Wrap(pos[i * 3 + 0] - pos[j * 3 + 0], box);
  const double dy = Wrap(pos[i * 3 + 1] - pos[j * 3 + 1], box);
  const double dz = Wrap(pos[i * 3 + 2] - pos[j * 3 + 2], box);
  const double r2 = dx * dx + dy * dy + dz * dz;
  if (r2 >= cutoff2 || r2 < 1e-12) {
    *fx = *fy = *fz = 0;
    return 12;
  }
  // Strongly softened so the force stays bounded (|f| <= ~8), and smoothly
  // switched to zero at the cutoff. Both matter for verification: different
  // protocols accumulate forces in different lock-grant orders, and with a
  // discontinuous force a 1-ulp difference could flip a pair across the
  // cutoff and produce a visible divergence. With a Lipschitz force the
  // reassociation noise stays near machine epsilon.
  const double inv2 = 1.0 / (r2 + 1.0);
  const double inv6 = inv2 * inv2 * inv2;
  const double window = 1.0 - r2 / cutoff2;
  const double mag = 8.0 * inv6 * (2.0 * inv6 - 1.0) * inv2 * window * window;
  *fx = mag * dx;
  *fy = mag * dy;
  *fz = mag * dz;
  return 40;
}

}  // namespace md
}  // namespace hlrc

#endif  // SRC_APPS_MD_COMMON_H_

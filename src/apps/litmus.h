// Litmus tests for the consistency checker (src/check, docs/CHECKING.md).
//
// Each litmus is a miniature shared-memory program exercising one classic
// weak-consistency pattern at word granularity. Every shared access goes
// through NodeContext::LoadWord / StoreWord so a registered AccessObserver
// (the LRC oracle) sees the exact value each read returned, and every stored
// value is unique per (node, round, slot), which lets the oracle identify
// the originating write of any read without instrumentation.
//
// The programs are schedule-robust by construction: polling loops are
// bounded, every round ends at a barrier, and a run is correct under *any*
// schedule the explorer produces — "reader missed this round's handoff" is a
// legal outcome; returning a happens-before-masked (stale) value is not.
// That split is exactly what makes them usable under seeded schedule
// exploration.
#ifndef SRC_APPS_LITMUS_H_
#define SRC_APPS_LITMUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/svm/system.h"

namespace hlrc {

struct LitmusConfig {
  int nodes = 4;
  int rounds = 3;
  // Seeds the per-node compute-time perturbations that desynchronize the
  // nodes (extra schedule diversity on top of the explorer's chaos hooks).
  uint64_t seed = 1;
};

class LitmusTest {
 public:
  virtual ~LitmusTest() = default;

  virtual std::string name() const = 0;

  // Allocates shared memory; called once before System::Run.
  virtual void Setup(System& sys) = 0;

  // The per-node program.
  virtual System::Program Program() = 0;
};

// The unique value written by `node` in `round` at `slot` (never 0; 0 is the
// initial page content).
constexpr uint64_t LitmusValue(NodeId node, int round, int slot) {
  return (static_cast<uint64_t>(node) + 1) << 32 |
         (static_cast<uint64_t>(round) + 1) << 16 | (static_cast<uint64_t>(slot) + 1);
}

// Factory by name: "message-passing", "store-buffer", "lock-handoff",
// "barrier-propagation", "false-sharing". Aborts on unknown names.
std::unique_ptr<LitmusTest> MakeLitmus(const std::string& name, const LitmusConfig& config);

// All litmus names, in the order above.
const std::vector<std::string>& LitmusNames();

}  // namespace hlrc

#endif  // SRC_APPS_LITMUS_H_

// Application interface for the five benchmark programs (paper §4.1).
//
// An App allocates its shared data in Setup(), returns a per-node coroutine
// program, and verifies the parallel result against a sequential reference
// after the run. Apps perform their real arithmetic on the shared pages (so
// diff contents and sizes are exact) and charge virtual compute time through
// NodeContext::ComputeFlops.
#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/svm/system.h"

namespace hlrc {

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  // Allocates shared memory; called once before System::Run.
  virtual void Setup(System& sys) = 0;

  // The per-node program. Node 0 initializes shared data before barrier 0.
  virtual System::Program Program() = 0;

  // Verifies the converged shared state against a sequential reference.
  // Returns true on success; fills `why` otherwise.
  virtual bool Verify(System& sys, std::string* why) = 0;
};

// Problem scale presets.
enum class AppScale {
  kTiny,     // Unit-test sized; seconds of virtual time.
  kDefault,  // Benchmark default (scaled-down paper problem).
  kPaper,    // The paper's problem size (slow to simulate).
};

// Factory by name: "lu", "sor", "water-nsq", "water-sp", "raytrace", "fft",
// plus any extension registered with AppRegistrar (e.g. the synthetic
// workloads of src/wkld). `seed` overrides the application's input seed
// (random initial state); by default each app keeps its historical fixed
// seed, so existing runs are unchanged. Pass SimConfig::seed here to plumb
// one root seed through a run. Aborts on unknown names; use TryMakeApp for a
// recoverable lookup.
std::unique_ptr<App> MakeApp(const std::string& name, AppScale scale,
                             std::optional<uint64_t> seed = std::nullopt);

// Like MakeApp but returns nullptr on an unknown name.
std::unique_ptr<App> TryMakeApp(const std::string& name, AppScale scale,
                                std::optional<uint64_t> seed = std::nullopt);

// The five benchmark names evaluated in the paper, in its order.
const std::vector<std::string>& AppNames();

// All applications, including extensions beyond the paper's five (FFT).
const std::vector<std::string>& AllAppNames();

// Every name registered with AppRegistrar (sorted): the paper apps plus any
// linked-in extensions. This is the authoritative list for CLI validation.
std::vector<std::string> RegisteredAppNames();

// Self-registration into the name→factory table behind MakeApp. Each
// application's translation unit defines one registrar at namespace scope;
// the apps library is an OBJECT library, so registrars in otherwise
// unreferenced translation units survive static-archive dead stripping.
class AppRegistrar {
 public:
  using Factory =
      std::function<std::unique_ptr<App>(AppScale scale, std::optional<uint64_t> seed)>;
  AppRegistrar(const char* name, Factory factory);
};

// Convenience: build a system, run the app, verify, and return the report.
struct AppRunResult {
  RunReport report;
  bool verified = false;
  std::string why;
};
AppRunResult RunApp(App& app, const SimConfig& config);

}  // namespace hlrc

#endif  // SRC_APPS_APP_H_

// Six-step 1-D FFT (extension application; Splash-2's FFT workload class).
//
// The N = n x n complex dataset is processed as transpose -> row FFTs ->
// twiddle multiply -> transpose -> row FFTs -> transpose. Rows are block
// partitioned, so every transpose is an all-to-all exchange — a communication
// pattern none of the paper's five applications exhibits, and a hard case for
// homeless protocols (every node needs diffs from every other node each
// phase).
#ifndef SRC_APPS_FFT_H_
#define SRC_APPS_FFT_H_

#include <complex>
#include <vector>

#include "src/apps/app.h"

namespace hlrc {

struct FftConfig {
  int n = 256;  // Matrix edge; the transform size is n*n. Power of two.
  uint64_t seed = 271828;
};

class FftApp : public App {
 public:
  explicit FftApp(const FftConfig& cfg) : cfg_(cfg) {}

  std::string name() const override { return "FFT"; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  const FftConfig& config() const { return cfg_; }

 private:
  using Cplx = std::complex<double>;

  Task<void> NodeMain(NodeContext& ctx);
  static void BandOf(int rows, int nodes, NodeId id, int* first, int* last);
  static void RowFft(Cplx* row, int n);
  Cplx InitValue(int i, int j) const;

  // One whole six-step transform on a host buffer (sequential reference,
  // identical operation order per element).
  void ReferenceTransform(std::vector<Cplx>* data) const;

  FftConfig cfg_;
  GlobalAddr a_ = 0;  // Ping and pong matrices.
  GlobalAddr b_ = 0;
  std::vector<Cplx> reference_;
};

}  // namespace hlrc

#endif  // SRC_APPS_FFT_H_

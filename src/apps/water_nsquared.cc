#include "src/apps/water_nsquared.h"

#include <cmath>
#include <cstring>

#include "src/apps/md_common.h"
#include "src/common/rng.h"

namespace hlrc {
namespace {

constexpr int kLockBase = 100;  // Per-partition force locks.

}  // namespace

void WaterNsqApp::Setup(System& sys) {
  const int64_t arr = static_cast<int64_t>(cfg_.molecules) * 3 * 8;
  pos_ = sys.space().AllocPageAligned(arr);
  vel_ = sys.space().AllocPageAligned(arr);
  frc_ = sys.space().AllocPageAligned(arr);
}

void WaterNsqApp::InitMolecules(double* pos, double* vel) const {
  Rng rng(cfg_.seed);
  for (int m = 0; m < cfg_.molecules; ++m) {
    for (int d = 0; d < 3; ++d) {
      pos[m * 3 + d] = rng.NextDouble() * cfg_.box;
      vel[m * 3 + d] = (rng.NextDouble() - 0.5) * 0.1;
    }
  }
}

int64_t WaterNsqApp::PairForce(const double* pos, int i, int j, double box, double cutoff2,
                               double* fx, double* fy, double* fz) {
  return md::PairForce(pos, i, j, box, cutoff2, fx, fy, fz);
}

Task<void> WaterNsqApp::NodeMain(NodeContext& ctx) {
  const int n = cfg_.molecules;
  const int p = ctx.nodes();
  HLRC_CHECK(n % p == 0);
  const int per = n / p;
  const int me = ctx.id();
  const int first = me * per;
  const int64_t arr3 = static_cast<int64_t>(n) * 3 * 8;
  const int64_t band = static_cast<int64_t>(per) * 3 * 8;
  const GlobalAddr my_pos = pos_ + static_cast<GlobalAddr>(first) * 24;
  const GlobalAddr my_vel = vel_ + static_cast<GlobalAddr>(first) * 24;
  const GlobalAddr my_frc = frc_ + static_cast<GlobalAddr>(first) * 24;
  const double cutoff2 = cfg_.cutoff * cfg_.cutoff;
  const int half = n / 2;

  if (me == 0) {
    const std::vector<NodeContext::Range> ranges0 = {{pos_, arr3, true}, {vel_, arr3, true}, {frc_, arr3, true}};
    co_await ctx.Access(ranges0);
    InitMolecules(ctx.Ptr<double>(pos_), ctx.Ptr<double>(vel_));
    std::memset(ctx.Ptr<double>(frc_), 0, static_cast<size_t>(arr3));
    co_await ctx.ComputeFlops(6ll * n);
  }
  co_await ctx.Barrier(0);

  std::vector<double> local_f(static_cast<size_t>(n) * 3);
  for (int step = 0; step < cfg_.steps; ++step) {
    ctx.SnapshotPhase(step * 2);
    // Phase 1: predict own positions, clear own forces. One atomic grant:
    // the stores below interleave across both arrays.
    const std::vector<NodeContext::Range> ranges1 = {{my_vel, band, false}, {my_pos, band, true}, {my_frc, band, true}};
    co_await ctx.Access(ranges1);
    {
      double* pos = ctx.Ptr<double>(pos_);
      const double* vel = ctx.Ptr<double>(vel_);
      double* frc = ctx.Ptr<double>(frc_);
      for (int m = first; m < first + per; ++m) {
        for (int d = 0; d < 3; ++d) {
          pos[m * 3 + d] += vel[m * 3 + d] * cfg_.dt;
          frc[m * 3 + d] = 0;
        }
      }
    }
    co_await ctx.ComputeFlops(6ll * per);
    co_await ctx.Barrier(1);
    ctx.SnapshotPhase(step * 2 + 1);

    // Phase 2: pair forces. Molecule i interacts with the following n/2
    // molecules (wrapping), accumulated both-sided into a private buffer.
    // The positions needed are [first, first+per+half) mod n.
    {
      // Positions needed: molecules [first, first + per + half) mod n.
      const int need = std::min(per + half, n);
      const int straight = std::min(need, n - first);
      co_await ctx.Read(pos_ + static_cast<GlobalAddr>(first) * 24,
                        static_cast<int64_t>(straight) * 24);
      if (need > straight) {
        co_await ctx.Read(pos_, static_cast<int64_t>(need - straight) * 24);
      }

      std::fill(local_f.begin(), local_f.end(), 0.0);
      const double* pos = ctx.Ptr<double>(pos_);
      int64_t flops = 0;
      for (int i = first; i < first + per; ++i) {
        for (int off = 1; off <= half; ++off) {
          const int j = (i + off) % n;
          double fx = 0;
          double fy = 0;
          double fz = 0;
          flops += PairForce(pos, i, j, cfg_.box, cutoff2, &fx, &fy, &fz);
          local_f[static_cast<size_t>(i) * 3 + 0] += fx;
          local_f[static_cast<size_t>(i) * 3 + 1] += fy;
          local_f[static_cast<size_t>(i) * 3 + 2] += fz;
          local_f[static_cast<size_t>(j) * 3 + 0] -= fx;
          local_f[static_cast<size_t>(j) * 3 + 1] -= fy;
          local_f[static_cast<size_t>(j) * 3 + 2] -= fz;
          flops += 6;
        }
      }
      co_await ctx.ComputeFlops(flops);

      // Flush accumulated forces into the shared array, one partition at a
      // time under that partition's lock (paper §4.1).
      for (int q = 0; q < p; ++q) {
        const int part = (me + q) % p;  // Start with self to reduce contention.
        const int pfirst = part * per;
        bool any = false;
        for (int m = pfirst; m < pfirst + per && !any; ++m) {
          any = local_f[static_cast<size_t>(m) * 3] != 0 ||
                local_f[static_cast<size_t>(m) * 3 + 1] != 0 ||
                local_f[static_cast<size_t>(m) * 3 + 2] != 0;
        }
        if (!any) {
          continue;
        }
        co_await ctx.Lock(kLockBase + part);
        co_await ctx.Write(frc_ + static_cast<GlobalAddr>(pfirst) * 24, band);
        double* frc = ctx.Ptr<double>(frc_);
        for (int m = pfirst; m < pfirst + per; ++m) {
          for (int d = 0; d < 3; ++d) {
            frc[m * 3 + d] += local_f[static_cast<size_t>(m) * 3 + d];
          }
        }
        co_await ctx.ComputeFlops(3ll * per);
        co_await ctx.Unlock(kLockBase + part);
      }
    }
    co_await ctx.Barrier(2);

    // Phase 3: integrate own molecules (atomic multi-array grant).
    const std::vector<NodeContext::Range> ranges2 = {{my_frc, band, false}, {my_vel, band, true}, {my_pos, band, true}};
    co_await ctx.Access(ranges2);
    {
      double* pos = ctx.Ptr<double>(pos_);
      double* vel = ctx.Ptr<double>(vel_);
      const double* frc = ctx.Ptr<double>(frc_);
      for (int m = first; m < first + per; ++m) {
        for (int d = 0; d < 3; ++d) {
          vel[m * 3 + d] += frc[m * 3 + d] * cfg_.dt;
          pos[m * 3 + d] += vel[m * 3 + d] * cfg_.dt;
        }
      }
    }
    co_await ctx.ComputeFlops(12ll * per);
    co_await ctx.Barrier(3);
  }
  ctx.SnapshotPhase(cfg_.steps * 2);
}

System::Program WaterNsqApp::Program() {
  return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
}

bool WaterNsqApp::Verify(System& sys, std::string* why) {
  const int n = cfg_.molecules;
  if (ref_pos_.empty()) {
    ref_pos_.resize(static_cast<size_t>(n) * 3);
    ref_vel_.resize(static_cast<size_t>(n) * 3);
    std::vector<double> frc(static_cast<size_t>(n) * 3, 0.0);
    InitMolecules(ref_pos_.data(), ref_vel_.data());
    const double cutoff2 = cfg_.cutoff * cfg_.cutoff;
    const int half = n / 2;
    for (int step = 0; step < cfg_.steps; ++step) {
      for (int m = 0; m < n; ++m) {
        for (int d = 0; d < 3; ++d) {
          ref_pos_[static_cast<size_t>(m) * 3 + d] +=
              ref_vel_[static_cast<size_t>(m) * 3 + d] * cfg_.dt;
          frc[static_cast<size_t>(m) * 3 + d] = 0;
        }
      }
      for (int i = 0; i < n; ++i) {
        for (int off = 1; off <= half; ++off) {
          const int j = (i + off) % n;
          double fx = 0;
          double fy = 0;
          double fz = 0;
          PairForce(ref_pos_.data(), i, j, cfg_.box, cutoff2, &fx, &fy, &fz);
          frc[static_cast<size_t>(i) * 3 + 0] += fx;
          frc[static_cast<size_t>(i) * 3 + 1] += fy;
          frc[static_cast<size_t>(i) * 3 + 2] += fz;
          frc[static_cast<size_t>(j) * 3 + 0] -= fx;
          frc[static_cast<size_t>(j) * 3 + 1] -= fy;
          frc[static_cast<size_t>(j) * 3 + 2] -= fz;
        }
      }
      for (int m = 0; m < n; ++m) {
        for (int d = 0; d < 3; ++d) {
          ref_vel_[static_cast<size_t>(m) * 3 + d] += frc[static_cast<size_t>(m) * 3 + d] * cfg_.dt;
          ref_pos_[static_cast<size_t>(m) * 3 + d] +=
              ref_vel_[static_cast<size_t>(m) * 3 + d] * cfg_.dt;
        }
      }
    }
  }

  // Final values live at the owning partition's node. Forces were accumulated
  // in lock-arrival order, so allow for floating-point reassociation noise.
  const int p = sys.config().nodes;
  const int per = n / p;
  for (NodeId node = 0; node < p; ++node) {
    const double* pos = reinterpret_cast<const double*>(
        sys.NodeMemory(node, pos_ + static_cast<GlobalAddr>(node * per) * 24));
    const double* vel = reinterpret_cast<const double*>(
        sys.NodeMemory(node, vel_ + static_cast<GlobalAddr>(node * per) * 24));
    for (int i = 0; i < per * 3; ++i) {
      const size_t ref_idx = static_cast<size_t>(node * per) * 3 + static_cast<size_t>(i);
      const double dp = std::fabs(pos[i] - ref_pos_[ref_idx]);
      const double dv = std::fabs(vel[i] - ref_vel_[ref_idx]);
      if (dp > 1e-7 || dv > 1e-7 || !std::isfinite(pos[i])) {
        if (why != nullptr) {
          *why = "Water-Nsquared: node " + std::to_string(node) + " component " +
                 std::to_string(i) + ": pos " + std::to_string(pos[i]) + " vs " +
                 std::to_string(ref_pos_[ref_idx]);
        }
        return false;
      }
    }
  }
  return true;
}

namespace {
const AppRegistrar kWaterNsqRegistrar("water-nsq",
                                      [](AppScale scale, std::optional<uint64_t> seed) {
                                        WaterNsqConfig cfg;
                                        switch (scale) {
                                          case AppScale::kTiny:
                                            cfg.molecules = 128;
                                            cfg.steps = 2;
                                            break;
                                          case AppScale::kDefault:
                                            cfg.molecules = 2048;
                                            cfg.steps = 3;
                                            break;
                                          case AppScale::kPaper:
                                            cfg.molecules = 4096;
                                            cfg.steps = 3;
                                            break;
                                        }
                                        if (seed) {
                                          cfg.seed = *seed;
                                        }
                                        return std::make_unique<WaterNsqApp>(cfg);
                                      });
}  // namespace

}  // namespace hlrc

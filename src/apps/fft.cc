#include "src/apps/fft.h"

#include <cmath>

#include "src/common/rng.h"
#include "src/svm/partition.h"

namespace hlrc {
namespace {

constexpr double kTau = 6.283185307179586476925286766559;

bool IsPow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

void FftApp::Setup(System& sys) {
  HLRC_CHECK(IsPow2(cfg_.n));
  const int64_t bytes = static_cast<int64_t>(cfg_.n) * cfg_.n * static_cast<int64_t>(sizeof(Cplx));
  a_ = sys.space().AllocPageAligned(bytes);
  b_ = sys.space().AllocPageAligned(bytes);
}

FftApp::Cplx FftApp::InitValue(int i, int j) const {
  Rng rng(cfg_.seed ^ (static_cast<uint64_t>(i) * 2654435761u + static_cast<uint64_t>(j)));
  return Cplx(rng.NextDouble() - 0.5, rng.NextDouble() - 0.5);
}

void FftApp::BandOf(int rows, int nodes, NodeId id, int* first, int* last) {
  const Band band = hlrc::BandOf(rows, nodes, id);
  *first = band.first;
  *last = band.last;
}

// Iterative radix-2 Cooley-Tukey, in place.
void FftApp::RowFft(Cplx* row, int n) {
  // Bit reversal.
  for (int i = 1, j = 0; i < n; ++i) {
    int bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(row[i], row[j]);
    }
  }
  for (int len = 2; len <= n; len <<= 1) {
    const double angle = -kTau / len;
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (int i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (int k = 0; k < len / 2; ++k) {
        const Cplx u = row[i + k];
        const Cplx v = row[i + k + len / 2] * w;
        row[i + k] = u + v;
        row[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

Task<void> FftApp::NodeMain(NodeContext& ctx) {
  const int n = cfg_.n;
  const int64_t row_bytes = static_cast<int64_t>(n) * sizeof(Cplx);
  const int64_t mat_bytes = row_bytes * n;
  int first = 0;
  int last = 0;
  BandOf(n, ctx.nodes(), ctx.id(), &first, &last);
  const int band = last - first + 1;
  const int64_t fft_flops_per_row = 5ll * n * (63 - __builtin_clzll(static_cast<uint64_t>(n)));

  auto row_addr = [&](GlobalAddr base, int row) {
    return base + static_cast<GlobalAddr>(row) * static_cast<GlobalAddr>(row_bytes);
  };

  // Distributed init of the own band of A.
  co_await ctx.Write(row_addr(a_, first), band * row_bytes);
  for (int i = first; i <= last; ++i) {
    Cplx* row = ctx.Ptr<Cplx>(row_addr(a_, i));
    for (int j = 0; j < n; ++j) {
      row[j] = InitValue(i, j);
    }
  }
  co_await ctx.ComputeFlops(4ll * band * n);
  co_await ctx.Barrier(0);

  GlobalAddr src = a_;
  GlobalAddr dst = b_;

  for (int phase = 0; phase < 3; ++phase) {
    // ---- Transpose: own rows of dst gather one column each from every
    // band of src — the all-to-all exchange.
    {
      const std::vector<NodeContext::Range> grant = {
          {src, mat_bytes, false}, {row_addr(dst, first), band * row_bytes, true}};
      co_await ctx.Access(grant);
      const Cplx* s = ctx.Ptr<Cplx>(src);
      Cplx* d = ctx.Ptr<Cplx>(dst);
      for (int i = first; i <= last; ++i) {
        for (int j = 0; j < n; ++j) {
          d[static_cast<int64_t>(i) * n + j] = s[static_cast<int64_t>(j) * n + i];
        }
      }
      co_await ctx.ComputeFlops(2ll * band * n);  // Load/store traffic.
    }
    co_await ctx.Barrier(1);

    if (phase == 2) {
      break;  // Final transpose only.
    }

    // ---- Row FFTs on the own band (+ twiddles after the first phase's FFT).
    {
      co_await ctx.Write(row_addr(dst, first), band * row_bytes);
      Cplx* d = ctx.Ptr<Cplx>(dst);
      for (int i = first; i <= last; ++i) {
        RowFft(&d[static_cast<int64_t>(i) * n], n);
      }
      if (phase == 0) {
        for (int i = first; i <= last; ++i) {
          for (int j = 0; j < n; ++j) {
            const double angle = -kTau * static_cast<double>(i) * j /
                                 (static_cast<double>(n) * n);
            d[static_cast<int64_t>(i) * n + j] *= Cplx(std::cos(angle), std::sin(angle));
          }
        }
      }
      co_await ctx.ComputeFlops(band * fft_flops_per_row +
                                (phase == 0 ? 8ll * band * n : 0));
    }
    co_await ctx.Barrier(2);

    std::swap(src, dst);
  }
}

System::Program FftApp::Program() {
  return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
}

void FftApp::ReferenceTransform(std::vector<Cplx>* data) const {
  const int n = cfg_.n;
  std::vector<Cplx> tmp(data->size());
  auto transpose = [&](const std::vector<Cplx>& s, std::vector<Cplx>* d) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        (*d)[static_cast<int64_t>(i) * n + j] = s[static_cast<int64_t>(j) * n + i];
      }
    }
  };
  // Phase 0: transpose, FFT rows, twiddle.
  transpose(*data, &tmp);
  for (int i = 0; i < n; ++i) {
    RowFft(&tmp[static_cast<int64_t>(i) * n], n);
    for (int j = 0; j < n; ++j) {
      const double angle = -kTau * static_cast<double>(i) * j / (static_cast<double>(n) * n);
      tmp[static_cast<int64_t>(i) * n + j] *= Cplx(std::cos(angle), std::sin(angle));
    }
  }
  // Phase 1: transpose, FFT rows.
  transpose(tmp, data);
  for (int i = 0; i < n; ++i) {
    RowFft(&(*data)[static_cast<int64_t>(i) * n], n);
  }
  // Phase 2: final transpose.
  transpose(*data, &tmp);
  *data = std::move(tmp);
}

bool FftApp::Verify(System& sys, std::string* why) {
  const int n = cfg_.n;
  if (reference_.empty()) {
    reference_.resize(static_cast<size_t>(n) * static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        reference_[static_cast<size_t>(i) * static_cast<size_t>(n) + static_cast<size_t>(j)] =
            InitValue(i, j);
      }
    }
    ReferenceTransform(&reference_);
  }

  // After an odd number of swaps the result lives in... phases: init in A,
  // t0: A->B, fft in B, t1: B->A, fft in A, t2: A->B. Result in B; each
  // node's band of B is current at that node.
  const int64_t row_bytes = static_cast<int64_t>(n) * sizeof(Cplx);
  for (NodeId node = 0; node < sys.config().nodes; ++node) {
    int first = 0;
    int last = 0;
    BandOf(n, sys.config().nodes, node, &first, &last);
    const Cplx* got = reinterpret_cast<const Cplx*>(
        sys.NodeMemory(node, b_ + static_cast<GlobalAddr>(first) * row_bytes));
    for (int i = 0; i <= last - first; ++i) {
      for (int j = 0; j < n; ++j) {
        const Cplx want =
            reference_[(static_cast<size_t>(first + i)) * static_cast<size_t>(n) +
                       static_cast<size_t>(j)];
        const Cplx have = got[static_cast<int64_t>(i) * n + j];
        if (std::abs(have - want) > 1e-9 * (1.0 + std::abs(want))) {
          if (why != nullptr) {
            *why = "FFT: row " + std::to_string(first + i) + " col " + std::to_string(j) +
                   ": got (" + std::to_string(have.real()) + "," + std::to_string(have.imag()) +
                   ") want (" + std::to_string(want.real()) + "," +
                   std::to_string(want.imag()) + ")";
          }
          return false;
        }
      }
    }
  }
  return true;
}

namespace {
const AppRegistrar kFftRegistrar("fft", [](AppScale scale, std::optional<uint64_t> seed) {
  FftConfig cfg;
  switch (scale) {
    case AppScale::kTiny:
      cfg.n = 32;
      break;
    case AppScale::kDefault:
      cfg.n = 256;
      break;
    case AppScale::kPaper:
      cfg.n = 512;
      break;
  }
  if (seed) {
    cfg.seed = *seed;
  }
  return std::make_unique<FftApp>(cfg);
});
}  // namespace

}  // namespace hlrc

// Raytrace: sphere-scene ray tracer with distributed task queues and task
// stealing. Scene data is read-only; image-plane writes and queue operations
// are fine-grained and cause false sharing and fragmentation at page level
// (paper §4.1; task queues reorganized as in the paper's modified version).
#ifndef SRC_APPS_RAYTRACE_H_
#define SRC_APPS_RAYTRACE_H_

#include <vector>

#include "src/apps/app.h"

namespace hlrc {

struct RaytraceConfig {
  int width = 256;
  int height = 256;
  int tile = 8;         // Tile edge in pixels; one tile per task.
  int spheres = 24;
  int max_depth = 2;    // Primary ray + one reflection bounce.
  uint64_t seed = 31415;
};

class RaytraceApp : public App {
 public:
  explicit RaytraceApp(const RaytraceConfig& cfg) : cfg_(cfg) {}

  std::string name() const override { return "Raytrace"; }
  void Setup(System& sys) override;
  System::Program Program() override;
  bool Verify(System& sys, std::string* why) override;

  const RaytraceConfig& config() const { return cfg_; }

 private:
  struct Sphere {
    double cx, cy, cz, r;
    double cr, cg, cb;  // Color.
    double reflect;
  };

  int TilesX() const { return cfg_.width / cfg_.tile; }
  int TilesY() const { return cfg_.height / cfg_.tile; }
  int NumTiles() const { return TilesX() * TilesY(); }

  GlobalAddr QueueAddr(NodeId q) const;
  GlobalAddr PixelAddr(int x, int y) const;

  Task<void> NodeMain(NodeContext& ctx);
  void BuildScene(Sphere* spheres) const;
  // Traces one pixel; returns the packed color and adds flops to *flops.
  uint32_t TracePixel(const Sphere* scene, int px, int py, int64_t* flops) const;

  RaytraceConfig cfg_;
  GlobalAddr scene_ = 0;
  GlobalAddr image_ = 0;
  GlobalAddr queues_ = 0;
  int64_t queue_ints_ = 0;  // Per-queue int32 slots: head, tail, entries.
  std::vector<NodeId> tile_renderer_;  // Host-side: which node rendered each tile.
};

}  // namespace hlrc

#endif  // SRC_APPS_RAYTRACE_H_

#include "src/apps/raytrace.h"

#include <cmath>
#include <cstring>

#include "src/common/rng.h"

namespace hlrc {
namespace {

constexpr int kQueueLockBase = 200;

struct Vec {
  double x, y, z;
};

Vec Sub(Vec a, Vec b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
Vec Add(Vec a, Vec b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
Vec Scale(Vec a, double s) { return {a.x * s, a.y * s, a.z * s}; }
double Dot(Vec a, Vec b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
Vec Norm(Vec a) {
  const double len = std::sqrt(Dot(a, a));
  return len > 0 ? Scale(a, 1.0 / len) : a;
}

}  // namespace

void RaytraceApp::Setup(System& sys) {
  HLRC_CHECK(cfg_.width % cfg_.tile == 0 && cfg_.height % cfg_.tile == 0);
  scene_ = sys.space().AllocPageAligned(static_cast<int64_t>(cfg_.spheres) * 64);
  image_ = sys.space().AllocPageAligned(static_cast<int64_t>(cfg_.width) * cfg_.height * 4);
  // One queue per node, sized to hold every tile: [head, tail, entries...].
  queue_ints_ = 2 + NumTiles();
  queues_ = sys.space().AllocPageAligned(static_cast<int64_t>(queue_ints_) * 4 *
                                         sys.config().nodes);
}

GlobalAddr RaytraceApp::QueueAddr(NodeId q) const {
  return queues_ + static_cast<GlobalAddr>(q) * static_cast<GlobalAddr>(queue_ints_) * 4;
}

GlobalAddr RaytraceApp::PixelAddr(int x, int y) const {
  return image_ + (static_cast<GlobalAddr>(y) * static_cast<GlobalAddr>(cfg_.width) +
                   static_cast<GlobalAddr>(x)) *
                      4;
}

void RaytraceApp::BuildScene(Sphere* spheres) const {
  Rng rng(cfg_.seed);
  for (int s = 0; s < cfg_.spheres; ++s) {
    Sphere& sp = spheres[s];
    sp.cx = rng.NextDouble() * 8 - 4;
    sp.cy = rng.NextDouble() * 8 - 4;
    sp.cz = 4 + rng.NextDouble() * 10;
    sp.r = 0.3 + rng.NextDouble() * 1.2;
    sp.cr = 0.2 + 0.8 * rng.NextDouble();
    sp.cg = 0.2 + 0.8 * rng.NextDouble();
    sp.cb = 0.2 + 0.8 * rng.NextDouble();
    sp.reflect = rng.NextDouble() * 0.6;
  }
}

uint32_t RaytraceApp::TracePixel(const Sphere* scene, int px, int py, int64_t* flops) const {
  // Camera at origin looking down +z.
  Vec color{0.05, 0.05, 0.08};  // Background.
  Vec origin{0, 0, 0};
  Vec dir = Norm({(px + 0.5) / cfg_.width * 2 - 1, (py + 0.5) / cfg_.height * 2 - 1, 1.5});
  double weight = 1.0;
  Vec accum{0, 0, 0};
  bool any_hit = false;

  for (int depth = 0; depth < cfg_.max_depth; ++depth) {
    // Closest sphere intersection.
    int hit = -1;
    double best_t = 1e30;
    for (int s = 0; s < cfg_.spheres; ++s) {
      const Sphere& sp = scene[s];
      const Vec oc = Sub(origin, {sp.cx, sp.cy, sp.cz});
      const double b = Dot(oc, dir);
      const double c = Dot(oc, oc) - sp.r * sp.r;
      const double disc = b * b - c;
      *flops += 15;
      if (disc <= 0) {
        continue;
      }
      const double t = -b - std::sqrt(disc);
      *flops += 4;
      if (t > 1e-4 && t < best_t) {
        best_t = t;
        hit = s;
      }
    }
    if (hit < 0) {
      break;
    }
    any_hit = true;
    const Sphere& sp = scene[hit];
    const Vec point = Add(origin, Scale(dir, best_t));
    const Vec normal = Norm(Sub(point, {sp.cx, sp.cy, sp.cz}));
    const Vec light = Norm(Vec{-0.4, -0.8, -0.4});
    double diffuse = std::max(0.0, Dot(normal, Scale(light, -1.0)));
    *flops += 30;

    // Shadow ray.
    for (int s = 0; s < cfg_.spheres; ++s) {
      if (s == hit) {
        continue;
      }
      const Sphere& sp2 = scene[s];
      const Vec oc = Sub(point, {sp2.cx, sp2.cy, sp2.cz});
      const Vec sd = Scale(light, -1.0);
      const double b = Dot(oc, sd);
      const double c = Dot(oc, oc) - sp2.r * sp2.r;
      *flops += 15;
      if (b * b - c > 0 && -b - std::sqrt(std::max(0.0, b * b - c)) > 1e-4) {
        diffuse *= 0.3;
        break;
      }
    }

    const double lit = 0.15 + 0.85 * diffuse;
    accum = Add(accum, Scale({sp.cr * lit, sp.cg * lit, sp.cb * lit},
                             weight * (1.0 - sp.reflect)));
    weight *= sp.reflect;
    *flops += 12;
    if (weight < 0.02) {
      break;
    }
    // Reflect.
    dir = Norm(Sub(dir, Scale(normal, 2.0 * Dot(dir, normal))));
    origin = Add(point, Scale(normal, 1e-4));
    *flops += 15;
  }
  if (any_hit) {
    color = accum;
  }
  auto to8 = [](double v) {
    const double c = v < 0 ? 0 : (v > 1 ? 1 : v);
    return static_cast<uint32_t>(c * 255.0 + 0.5);
  };
  return (to8(color.x) << 16) | (to8(color.y) << 8) | to8(color.z) | 0xff000000u;
}

Task<void> RaytraceApp::NodeMain(NodeContext& ctx) {
  const int p = ctx.nodes();
  const int me = ctx.id();
  const int tiles = NumTiles();
  const int64_t qbytes = queue_ints_ * 4;

  if (me == 0) {
    co_await ctx.Write(scene_, static_cast<int64_t>(cfg_.spheres) * 64);
    BuildScene(ctx.Ptr<Sphere>(scene_));
    // Distribute tiles round-robin across the per-node queues.
    co_await ctx.Write(queues_, qbytes * p);
    for (NodeId q = 0; q < p; ++q) {
      int32_t* queue = ctx.Ptr<int32_t>(QueueAddr(q));
      queue[0] = 0;  // head
      queue[1] = 0;  // tail (number of entries)
    }
    for (int t = 0; t < tiles; ++t) {
      int32_t* queue = ctx.Ptr<int32_t>(QueueAddr(t % p));
      queue[2 + queue[1]] = t;
      ++queue[1];
    }
    co_await ctx.ComputeFlops(tiles);
  }
  co_await ctx.Barrier(0);

  // Read-only scene: fetched once per node on first use.
  co_await ctx.Read(scene_, static_cast<int64_t>(cfg_.spheres) * 64);
  const Sphere* scene = ctx.Ptr<Sphere>(scene_);

  while (true) {
    int tile = -1;
    // Try own queue first, then steal from victims in order.
    for (int v = 0; v < p && tile < 0; ++v) {
      const NodeId q = static_cast<NodeId>((me + v) % p);
      co_await ctx.Lock(kQueueLockBase + q);
      co_await ctx.Write(QueueAddr(q), qbytes);
      int32_t* queue = ctx.Ptr<int32_t>(QueueAddr(q));
      if (queue[0] < queue[1]) {
        if (v == 0) {
          tile = queue[2 + queue[0]];  // Pop own head.
          ++queue[0];
        } else {
          --queue[1];  // Steal from the tail.
          tile = queue[2 + queue[1]];
        }
      }
      co_await ctx.Unlock(kQueueLockBase + q);
    }
    if (tile < 0) {
      break;  // All queues empty; tasks are never re-added.
    }

    tile_renderer_[static_cast<size_t>(tile)] = me;
    const int tx = (tile % TilesX()) * cfg_.tile;
    const int ty = (tile / TilesX()) * cfg_.tile;
    int64_t flops = 0;
    for (int row = 0; row < cfg_.tile; ++row) {
      co_await ctx.Write(PixelAddr(tx, ty + row), static_cast<int64_t>(cfg_.tile) * 4);
      uint32_t* pix = ctx.Ptr<uint32_t>(PixelAddr(tx, ty + row));
      for (int col = 0; col < cfg_.tile; ++col) {
        pix[col] = TracePixel(scene, tx + col, ty + row, &flops);
      }
    }
    co_await ctx.ComputeFlops(flops);
  }
  co_await ctx.Barrier(1);
}

System::Program RaytraceApp::Program() {
  tile_renderer_.assign(static_cast<size_t>(NumTiles()), 0);
  return [this](NodeContext& ctx) -> Task<void> { return NodeMain(ctx); };
}

bool RaytraceApp::Verify(System& sys, std::string* why) {
  std::vector<Sphere> scene(static_cast<size_t>(cfg_.spheres));
  BuildScene(scene.data());
  for (int tile = 0; tile < NumTiles(); ++tile) {
    const NodeId node = tile_renderer_[static_cast<size_t>(tile)];
    const int tx = (tile % TilesX()) * cfg_.tile;
    const int ty = (tile / TilesX()) * cfg_.tile;
    for (int row = 0; row < cfg_.tile; ++row) {
      const uint32_t* pix = reinterpret_cast<const uint32_t*>(
          sys.NodeMemory(node, PixelAddr(tx, ty + row)));
      for (int col = 0; col < cfg_.tile; ++col) {
        int64_t flops = 0;
        const uint32_t want = TracePixel(scene.data(), tx + col, ty + row, &flops);
        if (pix[col] != want) {
          if (why != nullptr) {
            *why = "Raytrace: pixel (" + std::to_string(tx + col) + "," +
                   std::to_string(ty + row) + ") got " + std::to_string(pix[col]) + " want " +
                   std::to_string(want);
          }
          return false;
        }
      }
    }
  }
  return true;
}

namespace {
const AppRegistrar kRaytraceRegistrar("raytrace",
                                      [](AppScale scale, std::optional<uint64_t> seed) {
                                        RaytraceConfig cfg;
                                        switch (scale) {
                                          case AppScale::kTiny:
                                            cfg.width = 64;
                                            cfg.height = 64;
                                            cfg.spheres = 12;
                                            break;
                                          case AppScale::kDefault:
                                            cfg.width = 256;
                                            cfg.height = 256;
                                            break;
                                          case AppScale::kPaper:
                                            cfg.width = 256;
                                            cfg.height = 256;
                                            cfg.spheres = 64;
                                            break;
                                        }
                                        if (seed) {
                                          cfg.seed = *seed;
                                        }
                                        return std::make_unique<RaytraceApp>(cfg);
                                      });
}  // namespace

}  // namespace hlrc
